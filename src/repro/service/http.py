"""Stdlib-only asyncio HTTP/1.1 JSON API for the simulation service.

A deliberately small hand-rolled server (no aiohttp in the container):
request line + headers + Content-Length body, one request per
connection, JSON in / JSON out.  Enough HTTP for curl, the CLI client
and the load generator — and every robustness decision of the service
maps onto a precise status code:

====== ================================================================
status meaning
====== ================================================================
200    success (results, health, metrics)
202    job admitted (or coalesced onto an in-flight duplicate)
400    malformed request / job spec
404    unknown path, job id or result hash
409    the job is quarantined (poison); result will never exist
413    request body too large
429    backpressure: queue full (shed) or tenant over quota;
       carries ``Retry-After`` seconds
500    unexpected server error
503    draining after SIGTERM (``/readyz`` also reports this)
====== ================================================================

Endpoints::

    POST /v1/jobs            submit a job spec; ``?wait=1`` blocks for
                             the terminal state (``&timeout=S``); an
                             ``X-Correlation-Id`` header is attached to
                             the job and echoed on every response
    GET  /v1/jobs/<id>       job status (+ result when DONE)
    GET  /v1/jobs/<id>/profile  the job's critical-path profile artifact
                             (202 while running, 404 if unavailable)
    GET  /v1/results/<hash>  cached result by content hash
    GET  /v1/workers         worker pids (chaos tooling)
    GET  /healthz            liveness
    GET  /readyz             readiness (503 while draining)
    GET  /metrics            service stats (JSON), ``?format=prometheus``
                             for a text exposition of the registry
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any

from ..errors import (
    JobNotFoundError,
    JobSpecError,
    PoisonJobError,
    QueueFullError,
    RateLimitError,
    ReproError,
    ShuttingDownError,
)
from ..observability.export import render_prometheus
from .jobs import JobState
from .service import ServiceConfig, SimulationService

#: Largest accepted request body (a job spec is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


def _timeout_param(params: dict[str, str]) -> float | None:
    """``?timeout=S`` as a non-negative float, or 400 — never a 500."""
    raw = params.get("timeout")
    if raw is None:
        return None
    try:
        timeout = float(raw)
    except ValueError:
        raise _HttpError(400, f"invalid timeout: {raw!r}") from None
    if timeout != timeout or timeout < 0:  # NaN or negative
        raise _HttpError(400, f"invalid timeout: {raw!r}")
    return timeout


def _parse_query(target: str) -> tuple[str, dict[str, str]]:
    path, _, query = target.partition("?")
    params: dict[str, str] = {}
    for pair in query.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        params[key] = value
    return path, params


class HttpServer:
    """One service instance behind one listening socket."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_until_signalled(self) -> None:
        """Run until SIGTERM/SIGINT, then drain gracefully."""
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        await self.stop()           # stop accepting connections
        await self.service.drain()  # finish running jobs, checkpoint

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, headers, body = await self._respond(reader)
        except ConnectionError:
            writer.close()
            return
        except Exception as exc:  # defensive: a handler bug must not hang curl
            status, headers, body = 500, {}, {"error": f"internal: {exc}"}
        payload = json.dumps(body, sort_keys=True).encode()
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        head.extend(f"{k}: {v}" for k, v in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, str], Any]:
        try:
            request_line = await asyncio.wait_for(reader.readline(), 30.0)
        except asyncio.TimeoutError:
            raise ConnectionError("request timed out") from None
        if not request_line:
            raise ConnectionError("empty request")
        try:
            method, target, _version = request_line.decode().split()
        except ValueError:
            return 400, {}, {"error": "malformed request line"}
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "").strip()
        try:
            length = int(raw_length) if raw_length else 0
        except ValueError:
            length = -1
        if length < 0:  # non-integer or negative: the client's fault, 400
            return 400, {}, {
                "error": f"invalid Content-Length: {raw_length!r}"
            }
        if length > MAX_BODY_BYTES:
            return 413, {}, {"error": f"body over {MAX_BODY_BYTES} bytes"}
        raw = await reader.readexactly(length) if length else b""

        try:
            return await self._route(method, target, headers, raw)
        except _HttpError as exc:
            return exc.status, exc.headers, {"error": str(exc)}
        except (QueueFullError, RateLimitError) as exc:
            return 429, {"Retry-After": f"{exc.retry_after_s:.3f}"}, {
                "error": str(exc),
                "retry_after_s": exc.retry_after_s,
            }
        except JobSpecError as exc:
            return 400, {}, {"error": str(exc)}
        except (JobNotFoundError,) as exc:
            return 404, {}, {"error": str(exc)}
        except PoisonJobError as exc:
            return 409, {}, {"error": str(exc)}
        except ShuttingDownError as exc:
            return 503, {}, {"error": str(exc)}
        except ReproError as exc:
            return 500, {}, {"error": str(exc)}

    # ------------------------------------------------------------------
    async def _route(
        self, method: str, target: str, headers: dict[str, str], raw: bytes
    ) -> tuple[int, dict[str, str], Any]:
        path, params = _parse_query(target)
        svc = self.service

        if path == "/healthz":
            return (200 if svc.healthy() else 503), {}, {
                "healthy": svc.healthy()
            }
        if path == "/readyz":
            return (200 if svc.ready() else 503), {}, {
                "ready": svc.ready(),
                "accepting": svc.accepting,
            }
        if path == "/metrics":
            if params.get("format") == "prometheus":
                text = render_prometheus(svc.registry)
                # Exposition format is text; wrap it for the JSON writer.
                return 200, {}, {"prometheus": text}
            return 200, {}, svc.stats()
        if path == "/v1/workers":
            return 200, {}, {"pids": svc.pool.pids(),
                             "replacements": svc.pool.replacements}

        if path == "/v1/jobs" and method == "POST":
            try:
                spec = json.loads(raw.decode() or "{}")
            except json.JSONDecodeError as exc:
                raise _HttpError(400, f"body is not JSON: {exc}") from None
            # Correlation-id propagation: an X-Correlation-Id header rides
            # the spec (delivery-only, never hashed) into the job record
            # and simulation profile, and is echoed on the response.
            header_cid = headers.get("x-correlation-id")
            if header_cid and isinstance(spec, dict):
                spec.setdefault("correlation_id", header_cid)
            timeout = _timeout_param(params)  # reject bad input pre-admission
            record = svc.submit(spec)
            if params.get("wait") in ("1", "true", "yes"):
                try:
                    record = await svc.wait(record.job_id, timeout=timeout)
                except asyncio.TimeoutError:
                    pass  # fall through: still-running jobs answer 202
            status = 200 if record.state in JobState.TERMINAL else 202
            echo = {}
            if record.spec.correlation_id:
                echo["X-Correlation-Id"] = record.spec.correlation_id
            return status, echo, record.status_dict()

        if (path.startswith("/v1/jobs/") and path.endswith("/profile")
                and method == "GET"):
            job_id = path[len("/v1/jobs/"):-len("/profile")]
            record = svc.get_job(job_id)
            if record.state not in JobState.TERMINAL:
                return 202, {}, {"job_id": record.job_id,
                                 "state": record.state}
            result = record.result or {}
            profile = result.get("profile")
            if profile is None:
                raise _HttpError(
                    404,
                    result.get("profile_error")
                    or f"job {job_id} has no profile "
                       f"(state {record.state})",
                )
            body = {"job_id": record.job_id, "hash": record.hash,
                    "state": record.state, "profile": profile}
            echo = {}
            if record.spec.correlation_id:
                body["correlation_id"] = record.spec.correlation_id
                echo["X-Correlation-Id"] = record.spec.correlation_id
            return 200, echo, body

        if path.startswith("/v1/jobs/") and method == "GET":
            return 200, {}, svc.get_job(path[len("/v1/jobs/"):]).status_dict()

        if path.startswith("/v1/results/") and method == "GET":
            content_hash = path[len("/v1/results/"):]
            return 200, {}, {"hash": content_hash,
                             "result": svc.get_result(content_hash)}

        if path.startswith("/v1/") or path in ("/v1", "/"):
            if method not in ("GET", "POST"):
                return 405, {}, {"error": f"method {method} not allowed"}
            raise _HttpError(404, f"no route for {method} {path}")
        raise _HttpError(404, f"no route for {method} {path}")


async def serve(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 8023,
    *,
    ready_message=None,
) -> None:
    """Boot a service + HTTP front end and run until SIGTERM/SIGINT."""
    service = SimulationService(config)
    server = HttpServer(service, host, port)
    await server.start()
    if ready_message is not None:
        ready_message(server.port)
    await server.serve_until_signalled()
