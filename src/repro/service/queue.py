"""Admission control: bounded queue, backpressure and per-tenant quotas.

The service never buffers unbounded work.  Admission can fail two ways,
both surfaced to clients as HTTP 429 with a ``Retry-After`` hint:

* :class:`~repro.errors.QueueFullError` — the global bounded queue is at
  capacity, so the job is **shed**.  The retry hint is the queue's
  current drain-time estimate, so well-behaved clients back off to the
  rate the server can actually sustain.
* :class:`~repro.errors.RateLimitError` — the submitting tenant's token
  bucket is empty.  Buckets refill continuously, so the hint is the time
  until one token is available.

Both mechanisms are deliberately *cheap to hit*: shedding at admission
costs a counter bump, not a worker.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Callable

from ..errors import QueueFullError, RateLimitError


class TokenBucket:
    """Classic continuous-refill token bucket.

    ``clock`` is injectable so tests can step time deterministically.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0 or burst <= 0:
            raise ValueError("rate_per_s and burst must be positive")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate_per_s
        )
        self._last = now

    def try_take(self, n: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def time_until(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 if now)."""
        self._refill()
        deficit = n - self._tokens
        return max(0.0, deficit / self.rate_per_s)


class RateLimiter:
    """Per-tenant token buckets, created lazily with shared defaults.

    ``rate_per_s <= 0`` disables rate limiting entirely (the default:
    quotas are an opt-in protection).
    """

    def __init__(
        self,
        rate_per_s: float = 0.0,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst) if burst is not None else max(1.0, rate_per_s)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate_per_s > 0

    def check(self, tenant: str) -> None:
        """Take one token for ``tenant`` or raise :class:`RateLimitError`."""
        if not self.enabled:
            return
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.rate_per_s, self.burst, clock=self._clock
            )
        if not bucket.try_take():
            retry = bucket.time_until()
            raise RateLimitError(
                f"tenant {tenant!r} exceeded {self.rate_per_s:g} jobs/s "
                f"(burst {self.burst:g})",
                retry_after_s=retry,
            )


class AdmissionQueue:
    """Bounded FIFO of admitted jobs with async consumption.

    ``put_nowait`` raises :class:`QueueFullError` instead of blocking —
    backpressure is explicit and immediate, never a hung request.
    ``service_rate_hint`` (jobs/s actually completed, fed back by the
    server) sizes the ``Retry-After`` estimate.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._not_empty = asyncio.Event()
        self.service_rate_hint: float = 0.0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def _retry_after(self) -> float:
        rate = self.service_rate_hint
        if rate <= 0:
            return 1.0
        # Time to drain half the queue: a conservative re-admission point.
        return max(0.1, (self.capacity / 2) / rate)

    def put_nowait(
        self, item: Any, *, front: bool = False, force: bool = False
    ) -> None:
        """Enqueue ``item`` or raise :class:`QueueFullError` at capacity.

        ``force=True`` bypasses the capacity check: it is reserved for
        work that was *already admitted once* (journal replay after a
        crash, retry re-dispatch) and therefore must never be shed —
        capacity bounds new admissions, not recovery.
        """
        if not force and len(self._items) >= self.capacity:
            raise QueueFullError(
                f"admission queue full ({self.capacity} jobs)",
                retry_after_s=self._retry_after(),
            )
        if front:
            self._items.appendleft(item)
        else:
            self._items.append(item)
        self._not_empty.set()

    async def get(self) -> Any:
        while not self._items:
            self._not_empty.clear()
            await self._not_empty.wait()
        item = self._items.popleft()
        if self._items:
            self._not_empty.set()
        return item
