"""Job model for the simulation service: spec, content hash, lifecycle.

A **job** is one deterministic simulation request: ``(program spec,
machine preset, policy, fault plan, seed)``.  Determinism (proven
bit-exact by the differential oracle, DESIGN.md §11) is what makes every
robustness mechanism in the service sound by construction:

* the **content hash** — SHA-256 over the canonical JSON of the
  result-determining fields — is a complete identity for the result, so
  duplicate submissions coalesce and cached results can be served to any
  tenant without staleness;
* a **retry** after a worker crash re-produces the identical result, so
  re-dispatch is always safe;
* a cached result equals a recomputed one bit for bit, so the cache never
  needs invalidation.

Tenant and deadline are *delivery* parameters, not result parameters —
they are deliberately excluded from the hash so two tenants asking for
the same simulation share one execution and one cache entry.

The lifecycle state machine (DESIGN.md §12)::

    submit ──► QUEUED ──► RUNNING ──► DONE
                 │    ▲      │  ├───► FAILED      (sim error / deadline)
                 │    └──────┘  └───► QUARANTINED (crashed N workers)
                 │      RETRYING (worker crashed, backoff+jitter)
                 └───► SHED  (queue full at admission, or deadline
                              expired while still queued)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..apps import APPS
from ..errors import JobSpecError
from ..experiments.config import QUICK_APP_PARAMS
from ..faults.plan import FaultPlan
from ..machine import presets
from ..schedulers import SCHEDULERS

# ---------------------------------------------------------------------------
# Lifecycle states


class JobState:
    """String constants for the job state machine (JSON-friendly)."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    RETRYING = "RETRYING"
    DONE = "DONE"
    FAILED = "FAILED"
    QUARANTINED = "QUARANTINED"
    SHED = "SHED"

    #: States a job can never leave.
    TERMINAL = frozenset({DONE, FAILED, QUARANTINED, SHED})


# ---------------------------------------------------------------------------
# Spec


@dataclass(frozen=True)
class JobSpec:
    """One simulation request.

    ``chaos`` is the fault-injection hook for the *service itself* (as
    opposed to ``faults``, which injects failures into the simulated
    machine): ``{"sleep_s": 0.5}`` makes the worker sleep before running
    (so tests and the load generator can kill it mid-job), and
    ``{"kill_worker": true}`` makes the worker SIGKILL itself — a
    reproducible poison job for quarantine testing.
    """

    app: str
    policy: str
    machine: str = "two-socket"
    seed: int = 0
    app_params: dict[str, Any] = field(default_factory=dict)
    sched_kwargs: dict[str, Any] = field(default_factory=dict)
    faults: dict[str, Any] | None = None
    chaos: dict[str, Any] = field(default_factory=dict)
    # Delivery parameters — never part of the content hash.
    tenant: str = "default"
    deadline_s: float | None = None
    #: Caller-supplied request id, propagated HTTP -> job -> profile so
    #: one id follows a request through every layer.  Delivery-only: two
    #: requests with different correlation ids still share one execution.
    correlation_id: str | None = None

    # -- validation / normalisation -------------------------------------
    def validated(self) -> "JobSpec":
        """Validate and canonicalise (fill default app params); raise
        :class:`~repro.errors.JobSpecError` on anything malformed."""
        if self.app not in APPS:
            raise JobSpecError(
                f"unknown app {self.app!r}; known: {sorted(APPS)}"
            )
        if self.policy not in SCHEDULERS:
            raise JobSpecError(
                f"unknown policy {self.policy!r}; known: {sorted(SCHEDULERS)}"
            )
        if self.machine not in presets.PRESETS:
            raise JobSpecError(
                f"unknown machine {self.machine!r}; "
                f"known: {sorted(presets.PRESETS)}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise JobSpecError(f"seed must be an integer, got {self.seed!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise JobSpecError(
                f"deadline_s must be positive, got {self.deadline_s!r}"
            )
        unknown = set(self.chaos) - {"sleep_s", "kill_worker"}
        if unknown:
            raise JobSpecError(f"unknown chaos keys: {sorted(unknown)}")
        if self.correlation_id is not None:
            cid = self.correlation_id
            if (
                not isinstance(cid, str)
                or not 0 < len(cid) <= 128
                or any(ch.isspace() and ch != " " for ch in cid)
                or not cid.isprintable()
            ):
                raise JobSpecError(
                    "correlation_id must be a printable string of at most "
                    "128 characters"
                )
        if self.faults is not None:
            try:
                FaultPlan.from_dict(self.faults)
            except Exception as exc:
                raise JobSpecError(f"bad fault plan: {exc}") from exc
        params = dict(self.app_params)
        if not params:
            # Canonical default sizes keep ad-hoc submissions cheap and —
            # because normalisation happens *before* hashing — cacheable.
            params = dict(QUICK_APP_PARAMS.get(self.app, {}))
        if params == self.app_params:
            return self
        return JobSpec(
            app=self.app, policy=self.policy, machine=self.machine,
            seed=self.seed, app_params=params,
            sched_kwargs=dict(self.sched_kwargs), faults=self.faults,
            chaos=dict(self.chaos), tenant=self.tenant,
            deadline_s=self.deadline_s,
            correlation_id=self.correlation_id,
        )

    # -- identity --------------------------------------------------------
    def canonical_dict(self) -> dict[str, Any]:
        """The result-determining fields only (hash input)."""
        return {
            "app": self.app,
            "app_params": self.app_params,
            "chaos": self.chaos,
            "faults": self.faults,
            "machine": self.machine,
            "policy": self.policy,
            "sched_kwargs": self.sched_kwargs,
            "seed": self.seed,
        }

    def canonical_json(self) -> str:
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":"),
            default=str,
        )

    def content_hash(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out = self.canonical_dict()
        out["tenant"] = self.tenant
        out["deadline_s"] = self.deadline_s
        if self.correlation_id is not None:
            out["correlation_id"] = self.correlation_id
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        if not isinstance(data, dict):
            raise JobSpecError(f"job spec must be an object, got {type(data).__name__}")
        unknown = set(data) - {
            "app", "app_params", "chaos", "faults", "machine", "policy",
            "sched_kwargs", "seed", "tenant", "deadline_s",
            "correlation_id",
        }
        if unknown:
            raise JobSpecError(f"unknown job spec fields: {sorted(unknown)}")
        try:
            return cls(
                app=data["app"],
                policy=data["policy"],
                machine=data.get("machine", "two-socket"),
                seed=data.get("seed", 0),
                app_params=dict(data.get("app_params") or {}),
                sched_kwargs=dict(data.get("sched_kwargs") or {}),
                faults=data.get("faults"),
                chaos=dict(data.get("chaos") or {}),
                tenant=str(data.get("tenant") or "default"),
                deadline_s=data.get("deadline_s"),
                correlation_id=data.get("correlation_id"),
            )
        except KeyError as exc:
            raise JobSpecError(f"job spec missing field {exc.args[0]!r}") from None
        except (TypeError, ValueError) as exc:
            raise JobSpecError(f"bad job spec: {exc}") from None


# ---------------------------------------------------------------------------
# Record


@dataclass
class JobRecord:
    """Mutable server-side view of one admitted job."""

    job_id: str
    spec: JobSpec
    hash: str
    state: str = JobState.QUEUED
    submitted_at: float = 0.0
    finished_at: float | None = None
    attempts: int = 0
    crashes: int = 0
    result: dict[str, Any] | None = None
    error: str | None = None
    #: True when this record was served straight from the result cache.
    cached: bool = False

    def status_dict(self) -> dict[str, Any]:
        """JSON body for ``GET /v1/jobs/<id>``."""
        out = {
            "job_id": self.job_id,
            "hash": self.hash,
            "state": self.state,
            "attempts": self.attempts,
            "crashes": self.crashes,
            "cached": self.cached,
            "tenant": self.spec.tenant,
        }
        if self.spec.correlation_id is not None:
            out["correlation_id"] = self.spec.correlation_id
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


def execute_spec(spec_dict: dict[str, Any]) -> dict[str, Any]:
    """Run one job's simulation to completion (worker-process side).

    Deliberately a pure function of the canonical spec: same dict in,
    bit-identical result dict out — the property the dedupe cache and
    crash-retry logic rely on.
    """
    import os
    import signal
    import time

    spec = JobSpec.from_dict(spec_dict).validated()
    chaos = spec.chaos
    if chaos.get("sleep_s"):
        time.sleep(float(chaos["sleep_s"]))
    if chaos.get("kill_worker"):
        os.kill(os.getpid(), signal.SIGKILL)  # poison job: die uncleanly

    from ..apps import make_app
    from ..errors import ProfilingError
    from ..machine.interconnect import Interconnect
    from ..observability import Instrumentation, RingBufferSink
    from ..profiling import profile_run
    from ..runtime.simulator import Simulator
    from ..schedulers import make_scheduler

    topo = presets.by_name(spec.machine)
    program = make_app(spec.app, **spec.app_params).build(topo.n_sockets)
    scheduler = make_scheduler(spec.policy, **spec.sched_kwargs)
    faults = FaultPlan.from_dict(spec.faults) if spec.faults else None
    interconnect = Interconnect(
        topo, remote_penalty_exp=1.0, link_fraction=0.45,
        core_fraction=0.30,
    )
    # Instrumented run (bit-identical to an uninstrumented one, proven by
    # the §8 tests) so the job's critical-path profile ships with it.
    obs = Instrumentation(sink=RingBufferSink(1 << 18))
    sim = Simulator(
        program, topo, scheduler, interconnect=interconnect,
        seed=spec.seed, steal="near", faults=faults, instrument=obs,
    )
    result = sim.run()
    # Plain Python scalars: the result must JSON-round-trip bit-exactly
    # (cache hits are compared against recomputed results in the tests).
    out = {
        "makespan": float(result.makespan),
        "remote_fraction": float(result.remote_fraction),
        "reexecutions": int(result.reexecutions),
        "wasted_work": float(result.wasted_work),
        "n_tasks": int(program.n_tasks),
    }
    try:
        report = profile_run(
            program, result, topo, interconnect=interconnect
        )
        out["profile"] = report.to_dict(compact=True)
    except ProfilingError as exc:
        # A profiling bug must never fail a successful simulation; the
        # /profile endpoint surfaces the reason instead.
        out["profile_error"] = str(exc)
    return out
