"""The simulation service orchestrator (DESIGN.md §12).

Composes the admission queue, per-tenant rate limiter, content-addressed
result cache, crash-safe journal and supervised worker pool into one
object with a small async API:

* :meth:`SimulationService.submit` — admission control.  Resolution
  order: quarantine check (poison jobs are *never* re-run), cache lookup
  (hit → DONE immediately), in-flight coalescing (same hash → same job),
  tenant quota, bounded queue (full → shed).  Only a genuinely new,
  admitted job consumes queue space and a journal record.
* per-slot worker loops — dequeue, enforce deadlines, dispatch to the
  pool, and translate pool outcomes into state transitions: crash →
  RETRYING with exponential backoff + deterministic jitter, too many
  crashes → QUARANTINED with a diagnostic artifact, deadline → FAILED,
  success → DONE + cache fill.
* :meth:`SimulationService.drain` — SIGTERM path: stop admitting, let
  running jobs finish (bounded by a grace period), checkpoint the
  journal.  Queued-but-unfinished jobs replay into the queue on the next
  :meth:`start`, and their results may meanwhile be served straight from
  the persistent cache — a restart loses zero completed work.

Every decision is counted in a
:class:`~repro.observability.MetricsRegistry` (wall-clock timestamps —
unlike the simulator's registries, the service lives in real time).
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import (
    JobNotFoundError,
    PoisonJobError,
    QueueFullError,
    RateLimitError,
    ServiceError,
    ShuttingDownError,
)
from ..observability import MetricsRegistry
from .cache import ResultCache
from .jobs import JobRecord, JobSpec, JobState
from .journal import Journal
from .pool import WorkerPool
from .queue import AdmissionQueue, RateLimiter


@dataclass
class ServiceConfig:
    """Tunables for one service instance."""

    workers: int = 2
    queue_capacity: int = 64
    #: A job that crashes this many workers is quarantined forever.
    poison_threshold: int = 2
    retry_base_s: float = 0.05
    retry_max_s: float = 2.0
    retry_jitter: float = 0.25
    #: Per-tenant admission rate (jobs/s); <= 0 disables quotas.
    rate_per_s: float = 0.0
    burst: float | None = None
    #: Applied when a job has no deadline of its own (None = unlimited).
    default_deadline_s: float | None = None
    drain_grace_s: float = 10.0
    #: Terminal job records kept for ``GET /v1/jobs/<id>`` before the
    #: oldest are evicted (results stay servable from the cache forever).
    max_records: int = 4096
    #: Persistence root (cache/, journal.jsonl, quarantine/); None = RAM only.
    data_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError(f"need >= 1 worker, got {self.workers}")
        if self.poison_threshold < 1:
            raise ServiceError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )
        if self.max_records < 1:
            raise ServiceError(
                f"max_records must be >= 1, got {self.max_records}"
            )


class SimulationService:
    """Fault-tolerant async job server over the deterministic simulator."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry or MetricsRegistry()
        data_dir = (
            Path(self.config.data_dir)
            if self.config.data_dir is not None else None
        )
        # write_behind: disk syncs happen on a writer thread, never on the
        # asyncio event loop that is serving requests.
        self.cache = ResultCache(
            data_dir / "cache" if data_dir is not None else None,
            write_behind=True,
        )
        self.journal = (
            Journal(data_dir / "journal.jsonl", write_behind=True)
            if data_dir is not None else None
        )
        self.quarantine_dir = (
            data_dir / "quarantine" if data_dir is not None else None
        )
        self.queue = AdmissionQueue(self.config.queue_capacity)
        self.limiter = RateLimiter(self.config.rate_per_s, self.config.burst)
        self.pool = WorkerPool(self.config.workers)
        self.records: dict[str, JobRecord] = {}
        #: hash -> the non-terminal record execution is coalesced onto.
        self.inflight_by_hash: dict[str, JobRecord] = {}
        #: hash -> quarantined record (poison jobs, never re-run).
        self.quarantined: dict[str, JobRecord] = {}
        self._events: dict[str, asyncio.Event] = {}
        #: Terminal job ids, oldest first, for bounded record retention.
        self._terminal_order: deque[str] = deque()
        self._job_counter = 0
        self._loops: list[asyncio.Task] = []
        self._retry_tasks: set[asyncio.Task] = set()
        self._running_jobs = 0
        self._completed = 0
        self._started_at = time.monotonic()
        self.accepting = False
        self.started = False

    # ------------------------------------------------------------------
    # metric helpers (wall-clock timestamps, relative to service start)
    def _now(self) -> float:
        return time.monotonic()

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(name).inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(self._now() - self._started_at, value)

    def _note_queue(self) -> None:
        self._gauge("service.queue.depth", self.queue.depth)

    # ------------------------------------------------------------------
    # lifecycle
    async def start(self) -> None:
        """Boot workers, replay the journal, start the dispatch loops."""
        if self.started:
            return
        await asyncio.to_thread(self.pool.start)
        self.accepting = True
        self.started = True
        self._started_at = time.monotonic()
        self._recover()
        for slot in range(self.config.workers):
            self._loops.append(
                asyncio.create_task(
                    self._worker_loop(slot), name=f"service-worker-{slot}"
                )
            )

    async def drain(self) -> None:
        """Graceful shutdown: finish running jobs, checkpoint, stop."""
        self.accepting = False
        deadline = time.monotonic() + self.config.drain_grace_s
        while (
            (self._running_jobs > 0 or self._retry_tasks)
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.02)
        for task in list(self._retry_tasks):
            task.cancel()
        if self.journal is not None:
            self.journal.append({"kind": "checkpoint", "t": time.time()})
        await self.stop()

    async def stop(self) -> None:
        """Hard stop (no drain): cancel loops, kill workers."""
        self.accepting = False
        self.started = False
        pending = self._loops + list(self._retry_tasks)
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)
        self._loops.clear()
        self._retry_tasks.clear()
        await asyncio.to_thread(self.pool.stop)
        # Closing drains the write-behind threads: everything journaled
        # or cached before stop() is durable once stop() returns.
        if self.journal is not None:
            await asyncio.to_thread(self.journal.close)
        await asyncio.to_thread(self.cache.close)

    # ------------------------------------------------------------------
    # journal recovery
    def _recover(self) -> None:
        """Resubmit jobs the previous life accepted but never finished."""
        if self.journal is None:
            return
        submits: dict[str, dict[str, Any]] = {}
        terminal: dict[str, str] = {}
        for rec in self.journal.replay():
            kind = rec.get("kind")
            if kind == "submit":
                submits[rec["id"]] = rec
            elif kind in ("done", "failed", "quarantined", "shed"):
                terminal[rec["id"]] = kind
            # "checkpoint" records only mark clean shutdowns.
        max_seq = 0
        for job_id, rec in submits.items():
            try:
                max_seq = max(max_seq, int(job_id.rsplit("-", 1)[1]))
            except (IndexError, ValueError):
                pass
            spec = JobSpec.from_dict(rec["spec"]).validated()
            state = terminal.get(job_id)
            if state == "quarantined":
                record = JobRecord(
                    job_id=job_id, spec=spec, hash=rec["hash"],
                    state=JobState.QUARANTINED,
                    error="poison job (quarantined in a previous run)",
                )
                self.records[job_id] = record
                self.quarantined[record.hash] = record
                continue
            if state is not None:
                continue  # finished cleanly; result (if any) is in the cache
            record = self._new_record(spec, job_id=job_id)
            cached = self.cache.get(record.hash)
            if cached is not None:
                self._finish(record, JobState.DONE, result=cached,
                             journal_kind="done", cached=True)
                continue
            self._count("service.jobs.resumed")
            # force: recovered jobs were admitted by a previous life; a
            # full queue must never turn restart into a crash-loop.
            self._enqueue(record, force=True)
        self._job_counter = max(self._job_counter, max_seq)

    # ------------------------------------------------------------------
    # submission
    def _new_record(self, spec: JobSpec, job_id: str | None = None) -> JobRecord:
        if job_id is None:
            self._job_counter += 1
            job_id = f"j-{self._job_counter}"
        record = JobRecord(
            job_id=job_id, spec=spec, hash=spec.content_hash(),
            submitted_at=time.monotonic(),
        )
        self.records[job_id] = record
        self._events[job_id] = asyncio.Event()
        return record

    def _enqueue(
        self, record: JobRecord, *, front: bool = False, force: bool = False
    ) -> None:
        self.queue.put_nowait(record, front=front, force=force)
        self.inflight_by_hash[record.hash] = record
        self._note_queue()

    def submit(self, spec: JobSpec | dict[str, Any]) -> JobRecord:
        """Admit one job (or resolve it from cache/coalescing/quarantine).

        Raises
        ------
        ShuttingDownError    server is draining (HTTP 503)
        JobSpecError         malformed spec (HTTP 400)
        RateLimitError       tenant over quota (HTTP 429)
        QueueFullError       admission queue full, job shed (HTTP 429)
        """
        if not self.accepting:
            raise ShuttingDownError("server is draining; no new jobs")
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        spec = spec.validated()
        content_hash = spec.content_hash()

        poisoned = self.quarantined.get(content_hash)
        if poisoned is not None:
            self._count("service.jobs.poison_rejected")
            return poisoned

        cached = self.cache.get(content_hash)
        if cached is not None:
            self._count("service.cache.hits")
            record = self._new_record(spec)
            self._finish(record, JobState.DONE, result=cached,
                         journal_kind=None, cached=True)
            return record

        inflight = self.inflight_by_hash.get(content_hash)
        if inflight is not None and inflight.state not in JobState.TERMINAL:
            self._count("service.jobs.coalesced")
            return inflight

        try:
            self.limiter.check(spec.tenant)
        except RateLimitError:
            self._count("service.jobs.rate_limited")
            raise
        record = self._new_record(spec)
        try:
            self._enqueue(record)
        except QueueFullError:
            record.state = JobState.SHED
            record.error = "queue full"
            self._count("service.jobs.shed")
            self._events[record.job_id].set()
            raise
        self._count("service.cache.misses")
        self._count("service.jobs.submitted")
        if self.journal is not None:
            self.journal.append({
                "kind": "submit", "id": record.job_id, "hash": record.hash,
                "spec": spec.to_dict(), "t": time.time(),
            })
        return record

    # ------------------------------------------------------------------
    # completion plumbing
    def _finish(
        self,
        record: JobRecord,
        state: str,
        *,
        result: dict[str, Any] | None = None,
        error: str | None = None,
        journal_kind: str | None = None,
        cached: bool = False,
    ) -> None:
        record.state = state
        record.result = result
        record.error = error
        record.cached = cached
        record.finished_at = time.monotonic()
        if record.submitted_at:
            # Submit-to-terminal latency histogram; surfaced (with
            # quantile summaries) by /metrics?format=prometheus.
            self.registry.histogram("service.job.latency_s").observe(
                max(0.0, record.finished_at - record.submitted_at)
            )
        self.inflight_by_hash.pop(record.hash, None)
        if journal_kind is not None and self.journal is not None:
            self.journal.append({
                "kind": journal_kind, "id": record.job_id,
                "hash": record.hash, "t": time.time(),
                **({"error": error} if error else {}),
            })
        # The event is one-shot: waiters hold their own reference, and
        # wait() short-circuits on terminal records, so drop it now
        # rather than accumulating one per job forever.
        event = self._events.pop(record.job_id, None)
        if event is not None:
            event.set()
        self._retain(record)

    def _retain(self, record: JobRecord) -> None:
        """Bound ``self.records``: evict the oldest terminal records.

        Quarantined records are exempt — the poison check consults them
        by hash for the lifetime of the server.  Evicted DONE results
        remain servable from the content-addressed cache.
        """
        self._terminal_order.append(record.job_id)
        while len(self._terminal_order) > self.config.max_records:
            old_id = self._terminal_order.popleft()
            old = self.records.get(old_id)
            if old is not None and old.state == JobState.QUARANTINED:
                continue
            self.records.pop(old_id, None)

    async def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Await a job's terminal state (used by ``submit?wait=1``)."""
        record = self.get_job(job_id)
        if record.state in JobState.TERMINAL:
            return record
        event = self._events.get(job_id)
        if event is None:
            return record
        await asyncio.wait_for(event.wait(), timeout=timeout)
        return record

    # ------------------------------------------------------------------
    # the per-slot dispatch loop
    def _deadline_remaining(self, record: JobRecord) -> float | None:
        """Seconds left before this job's deadline (None = unbounded)."""
        deadline_s = record.spec.deadline_s
        if deadline_s is None:
            return self.config.default_deadline_s
        return deadline_s - (time.monotonic() - record.submitted_at)

    async def _worker_loop(self, slot: int) -> None:
        while True:
            record = await self.queue.get()
            self._note_queue()
            if record.state not in (JobState.QUEUED,):
                continue  # stale entry (e.g. quarantined while queued)
            remaining = self._deadline_remaining(record)
            if remaining is not None and remaining <= 0:
                # Stale while queued: shed it rather than burn a worker.
                self._count("service.jobs.shed")
                self._count("service.jobs.deadline_expired")
                self._finish(record, JobState.SHED,
                             error="deadline expired while queued",
                             journal_kind="shed")
                continue
            record.state = JobState.RUNNING
            record.attempts += 1
            self._running_jobs += 1
            self._gauge("service.jobs.running", self._running_jobs)
            try:
                outcome = await asyncio.to_thread(
                    self.pool.run, slot, record.spec.to_dict(), remaining
                )
            finally:
                self._running_jobs -= 1
                self._gauge("service.jobs.running", self._running_jobs)
            self._resolve(record, outcome)

    def _resolve(self, record: JobRecord, outcome) -> None:
        if outcome.kind == "ok":
            self.cache.put(record.hash, outcome.payload)
            self._completed += 1
            uptime = max(1e-6, time.monotonic() - self._started_at)
            self.queue.service_rate_hint = self._completed / uptime
            self._count("service.jobs.done")
            self._finish(record, JobState.DONE, result=outcome.payload,
                         journal_kind="done")
        elif outcome.kind == "error":
            # Deterministic library error: retrying would fail identically.
            message = (
                f"{outcome.payload.get('error')}: "
                f"{outcome.payload.get('message')}"
            )
            self._count("service.jobs.failed")
            self._finish(record, JobState.FAILED, error=message,
                         journal_kind="failed")
        elif outcome.kind == "timeout":
            self._count("service.jobs.failed")
            self._count("service.jobs.deadline_expired")
            self._finish(record, JobState.FAILED,
                         error="deadline exceeded (worker killed)",
                         journal_kind="failed")
        elif outcome.kind == "crashed":
            record.crashes += 1
            self._count("service.workers.crashed")
            if record.crashes >= self.config.poison_threshold:
                self._quarantine(record, outcome)
            else:
                self._count("service.retries")
                record.state = JobState.RETRYING
                delay = self._backoff(record)
                task = asyncio.create_task(self._requeue_later(record, delay))
                self._retry_tasks.add(task)
                task.add_done_callback(self._retry_tasks.discard)
        else:  # pragma: no cover - defensive
            raise ServiceError(f"unknown outcome kind {outcome.kind!r}")

    def _backoff(self, record: JobRecord) -> float:
        base = min(
            self.config.retry_max_s,
            self.config.retry_base_s * (2 ** (record.crashes - 1)),
        )
        # Deterministic jitter: seeded by (hash, crash count) so reruns of
        # the same failure sequence back off identically — reproducible
        # chaos tests, yet distinct jobs still decorrelate.
        rng = random.Random(f"{record.hash}:{record.crashes}")
        return base * (1.0 + self.config.retry_jitter * rng.random())

    async def _requeue_later(self, record: JobRecord, delay: float) -> None:
        await asyncio.sleep(delay)
        record.state = JobState.QUEUED
        # Retries jump the line and bypass the capacity check: they were
        # already admitted once, and a full queue must not strand a
        # half-done job in RETRYING forever.
        self._enqueue(record, front=True, force=True)

    def _quarantine(self, record: JobRecord, outcome) -> None:
        self._count("service.jobs.quarantined")
        diagnostic = {
            "spec": record.spec.to_dict(),
            "hash": record.hash,
            "job_id": record.job_id,
            "crashes": record.crashes,
            "attempts": record.attempts,
            "last_exitcode": outcome.exitcode,
            "quarantined_at": time.time(),
        }
        artifact = None
        if self.quarantine_dir is not None:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            artifact = self.quarantine_dir / f"{record.hash}.json"
            artifact.write_text(json.dumps(diagnostic, indent=2,
                                           sort_keys=True))
        self._finish(
            record, JobState.QUARANTINED,
            error=(
                f"poison job: crashed {record.crashes} worker(s)"
                + (f"; diagnostic at {artifact}" if artifact else "")
            ),
            journal_kind="quarantined",
        )
        self.quarantined[record.hash] = record

    # ------------------------------------------------------------------
    # queries
    def get_job(self, job_id: str) -> JobRecord:
        record = self.records.get(job_id)
        if record is None:
            raise JobNotFoundError(f"no job {job_id!r}")
        return record

    def get_result(self, content_hash: str) -> dict[str, Any]:
        if content_hash in self.quarantined:
            raise PoisonJobError(
                f"result {content_hash} is quarantined (poison job)"
            )
        result = self.cache.get(content_hash)
        if result is None:
            raise JobNotFoundError(f"no cached result {content_hash!r}")
        return result

    def healthy(self) -> bool:
        return self.started

    def ready(self) -> bool:
        return self.started and self.accepting

    def stats(self) -> dict[str, Any]:
        """Flat snapshot for ``GET /metrics`` (JSON form)."""
        counters = {n: c.value for n, c in sorted(self.registry.counters.items())}
        hits = counters.get("service.cache.hits", 0.0)
        misses = counters.get("service.cache.misses", 0.0)
        lookups = hits + misses
        return {
            "counters": counters,
            "gauges": {
                n: g.value for n, g in sorted(self.registry.gauges.items())
            },
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.capacity,
            "running": self._running_jobs,
            "workers": self.pool.pids(),
            "worker_replacements": self.pool.replacements,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "uptime_s": time.monotonic() - self._started_at,
            "accepting": self.accepting,
        }
