"""Unit tests for the baseline scheduling policies."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.machine import bullion_s16
from repro.runtime import Placement, Simulator, TaskProgram, simulate
from repro.schedulers import (
    SCHEDULERS,
    DFIFOScheduler,
    EPScheduler,
    LASScheduler,
    make_scheduler,
)

from conftest import make_fan_program


class TestRegistry:
    def test_all_policies_present(self):
        assert set(SCHEDULERS) == {"dfifo", "las", "las+migrate", "ep",
                                   "heft", "calist", "bsp", "random",
                                   "rgp", "rgp+las"}

    def test_make_scheduler_unknown(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("hefty")

    def test_rgp_lazy_construction(self):
        s = make_scheduler("rgp+las", window_size=32)
        assert s.name == "rgp+las"
        assert s.window_size == 32


class TestDFIFO:
    def test_cyclic_core_assignment(self, topo8):
        sched = DFIFOScheduler()
        sched.attach(_FakeSim(topo8), np.random.default_rng(0))
        p = TaskProgram()
        tasks = [p.task() for _ in range(40)]
        cores = [sched.choose(t).core for t in tasks]
        assert cores[:32] == list(range(32))
        assert cores[32:] == list(range(8))

    def test_spreads_across_sockets(self, topo8):
        res = simulate(make_fan_program(width=32), topo8, DFIFOScheduler(),
                       steal=False)
        assert len(set(r.socket for r in res.records)) == 8


class TestLAS:
    def test_cold_start_random(self, topo8):
        """Tasks with no allocated data spread over all sockets."""
        p = TaskProgram()
        for i in range(64):
            a = p.data(f"a{i}", 65536)
            p.task(outs=[a])
        res = simulate(p.finalize(), topo8, LASScheduler(), seed=0,
                       steal=False)
        assert len(set(r.socket for r in res.records)) >= 6

    def test_follows_allocated_data(self, topo8):
        """A reader lands on the socket where its input lives."""
        p = TaskProgram()
        a = p.data("a", 262144, initial_node=5)
        p.task("r", ins=[a])
        res = simulate(p.finalize(), topo8, LASScheduler(), seed=0,
                       steal=False)
        assert res.records[0].socket == 5

    def test_weight_majority_wins(self, topo8):
        p = TaskProgram()
        big = p.data("big", 1_000_000, initial_node=2)
        small = p.data("small", 4096, initial_node=6)
        p.task("r", ins=[big, small])
        res = simulate(p.finalize(), topo8, LASScheduler(), seed=0,
                       steal=False)
        assert res.records[0].socket == 2

    def test_poster_threshold_randomises_output_heavy_tasks(self, topo8):
        """With the poster-literal 0.5 threshold, a task whose unallocated
        output dwarfs its allocated input is placed randomly."""
        sockets = set()
        for seed in range(12):
            p = TaskProgram()
            small_in = p.data("in", 4096, initial_node=3)
            big_out = p.data("out", 1_000_000)
            p.task(ins=[small_in], outs=[big_out])
            res = simulate(p.finalize(), topo8,
                           LASScheduler(random_threshold=0.5), seed=seed,
                           steal=False)
            sockets.add(res.records[0].socket)
        assert len(sockets) > 2  # randomised

    def test_drebes_threshold_follows_input(self, topo8):
        for seed in range(6):
            p = TaskProgram()
            small_in = p.data("in", 4096, initial_node=3)
            big_out = p.data("out", 1_000_000)
            p.task(ins=[small_in], outs=[big_out])
            res = simulate(p.finalize(), topo8,
                           LASScheduler(random_threshold=0.0), seed=seed,
                           steal=False)
            assert res.records[0].socket == 3

    def test_tie_break_first_deterministic(self, topo8):
        p = TaskProgram()
        a = p.data("a", 65536, initial_node=4)
        b = p.data("b", 65536, initial_node=6)
        p.task(ins=[a, b])
        res = simulate(p.finalize(), topo8, LASScheduler(tie_break="first"),
                       seed=0, steal=False)
        assert res.records[0].socket == 4

    def test_bad_params(self):
        with pytest.raises(ValueError):
            LASScheduler(tie_break="coin")
        with pytest.raises(ValueError):
            LASScheduler(random_threshold=2.0)

    def test_unreachable_node_bytes_count_as_unallocated(self):
        """Regression: with more memory nodes than sockets, bytes bound
        beyond the socket range must fold into the unallocated total, not
        silently vanish from the cold-start rule."""
        from repro.machine import MemoryManager
        from repro.schedulers.las import las_pick_socket

        p = TaskProgram()
        a = p.data("a", 65536)
        b = p.data("b", 65536)
        task = p.task(ins=[a, b])
        mm = MemoryManager(n_nodes=4)
        for o in p.objects:
            mm.register(o.key, o.size_bytes)
        mm.bind(0, 3)  # all of `a` on node 3 — no socket can claim it
        mm.bind(1, 0, length=4096)  # one page of `b` on socket 0

        # bound-to-sockets fraction = 4096 / 131072, well under 0.5: the
        # cold-start rule must fire.  Before the fix the unreachable 64 KiB
        # disappeared and the rule saw 4096 / 65536 — still random, but the
        # evidence (and any threshold between the two ratios) disagreed.
        detail = {}
        socket = las_pick_socket(
            task, mm, np.random.default_rng(0), n_sockets=2,
            random_threshold=0.5, audit=None, detail=detail,
        )
        assert socket in (0, 1)
        assert detail["branch"] == "random"
        assert detail["unbound_bytes"] == 65536 + 61440  # b tail + all of a
        assert detail["weights"] == [4096, 0]

        # With the threshold at 0: socket 0 holds the only reachable bytes
        # and must win the weighted branch outright.
        detail = {}
        socket = las_pick_socket(
            task, mm, np.random.default_rng(0), n_sockets=2,
            random_threshold=0.0, audit=None, detail=detail,
        )
        assert socket == 0
        assert detail["branch"] == "weighted"

    def test_threshold_sensitive_to_unreachable_bytes(self):
        """A threshold between the buggy and fixed ratios flips the branch:
        proof the truncated bytes now count against the cold-start rule."""
        from repro.machine import MemoryManager
        from repro.schedulers.las import las_pick_socket

        p = TaskProgram()
        a = p.data("a", 65536)
        b = p.data("b", 65536)
        task = p.task(ins=[a, b])
        mm = MemoryManager(n_nodes=4)
        for o in p.objects:
            mm.register(o.key, o.size_bytes)
        mm.bind(0, 3)
        mm.bind(1, 0, length=8192)
        # fixed ratio: 8192/131072 = 0.0625; buggy ratio (a vanished):
        # 8192/65536 = 0.125.  threshold 0.08 separates them.
        detail = {}
        las_pick_socket(
            task, mm, np.random.default_rng(0), n_sockets=2,
            random_threshold=0.08, audit=None, detail=detail,
        )
        assert detail["branch"] == "random"


class TestEP:
    def test_follows_annotation(self, topo8):
        p = TaskProgram()
        p.task(meta={"ep_socket": 6})
        res = simulate(p.finalize(), topo8, EPScheduler(), steal=False)
        assert res.records[0].socket == 6

    def test_missing_annotation_raises(self, topo8):
        p = TaskProgram()
        p.task()
        from repro.errors import SimulationError

        with pytest.raises((SchedulerError, SimulationError)):
            simulate(p.finalize(), topo8, EPScheduler())

    def test_out_of_range_annotation_raises(self, topo2):
        # Regression: EP used to wrap out-of-range hints with
        # ``% n_sockets``, silently folding a program built for a bigger
        # machine onto the small one (socket 5 -> socket 1 on 2 sockets).
        p = TaskProgram()
        p.task(meta={"ep_socket": 5})
        from repro.errors import SimulationError

        with pytest.raises((SchedulerError, SimulationError)) as exc:
            simulate(p.finalize(), topo2, EPScheduler(), steal=False)
        assert "out of range" in str(exc.value)

    def test_negative_annotation_raises(self, topo2):
        p = TaskProgram()
        p.task(meta={"ep_socket": -1})
        from repro.errors import SimulationError

        with pytest.raises((SchedulerError, SimulationError)):
            simulate(p.finalize(), topo2, EPScheduler(), steal=False)


class _FakeSim:
    """Minimal simulator stand-in for pure choose() tests."""

    def __init__(self, topology):
        self.topology = topology
        self.memory = None
        self.parked = []
