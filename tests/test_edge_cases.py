"""Edge cases and failure injection across subsystems.

Pathological machines, degenerate programs, and adversarial scheduler
behaviour: everything here either works or fails with a library error —
never a bare crash or a hang.
"""

import numpy as np
import pytest

from repro.errors import ReproError, SimulationError
from repro.graph import CSRGraph, TaskGraph
from repro.machine import (
    Interconnect,
    MemoryManager,
    NumaTopology,
    custom,
    single_socket,
    uniform_distance_matrix,
)
from repro.partition import DualRecursiveBipartitioner, edge_cut
from repro.runtime import Placement, Simulator, TaskProgram, simulate
from repro.schedulers import make_scheduler
from repro.schedulers.base import Scheduler


class TestPathologicalMachines:
    def test_one_core_machine(self):
        topo = single_socket(cores=1)
        p = TaskProgram()
        for _ in range(5):
            p.task(work=1.0)
        res = simulate(p.finalize(), topo, make_scheduler("dfifo"),
                       duration_jitter=0.0)
        assert res.makespan == pytest.approx(5.0)

    def test_many_sockets_one_core_each(self):
        topo = custom(16, 1, remote=30.0)
        p = TaskProgram()
        a = p.data("a", 65536)
        p.task(outs=[a], work=0.1)
        for _ in range(10):
            p.task(inouts=[a], work=0.1)
        res = simulate(p.finalize(), topo, make_scheduler("las"), seed=0)
        assert res.n_tasks == 11

    def test_extreme_distance_ratio(self):
        dist = uniform_distance_matrix(2, remote=1000.0)
        topo = NumaTopology(2, 2, dist, 1e6, name="far")
        p = TaskProgram()
        a = p.data("a", 262144, initial_node=0)
        p.task(ins=[a], work=0.0)
        res = simulate(p.finalize(), topo, make_scheduler("random"), seed=1)
        assert np.isfinite(res.makespan)

    def test_tiny_page_size(self):
        topo = single_socket(cores=2)
        p = TaskProgram()
        a = p.data("a", 1000)
        p.task(outs=[a], work=0.1)
        res = Simulator(p.finalize(), topo, make_scheduler("random"),
                        page_size=1).run()
        assert res.n_tasks == 1

    def test_huge_object(self):
        topo = single_socket(cores=1)
        mm = MemoryManager(1)
        mm.register(0, 10**9)  # 1 GB -> 244k pages
        assert mm.touch(0, 0) == -(-(10**9) // mm.page_size)


class TestDegeneratePrograms:
    def test_single_task(self, topo8):
        p = TaskProgram()
        p.task(work=1.0)
        res = simulate(p.finalize(), topo8, make_scheduler("rgp+las"))
        assert res.n_tasks == 1

    def test_zero_work_zero_bytes_tasks(self, topo8):
        p = TaskProgram()
        for _ in range(20):
            p.task(work=0.0)
        res = simulate(p.finalize(), topo8, make_scheduler("las"), seed=0)
        assert res.makespan == pytest.approx(0.0, abs=1e-6)

    def test_only_barriers(self, topo8):
        p = TaskProgram()
        p.barrier()
        p.barrier()
        res = simulate(p.finalize(), topo8, make_scheduler("las"))
        assert res.makespan == 0.0

    def test_wide_fan_in(self, topo8):
        """1000 producers feeding one consumer (flat reduction)."""
        p = TaskProgram()
        objs = []
        for i in range(1000):
            a = p.data(f"a{i}", 1024)
            p.task(outs=[a], work=0.001)
            objs.append(a)
        p.task("sink", ins=objs, work=0.001)
        res = simulate(p.finalize(), topo8, make_scheduler("las"), seed=0)
        order = res.completion_order()
        assert order[-1] == 1000

    def test_deep_chain(self, topo8):
        p = TaskProgram()
        a = p.data("a", 4096)
        p.task(outs=[a], work=0.001)
        for _ in range(2000):
            p.task(inouts=[a], work=0.001)
        res = simulate(p.finalize(), topo8, make_scheduler("rgp+las",
                                                           window_size=100),
                       seed=0)
        assert res.n_tasks == 2001

    def test_single_object_all_modes(self, topo8):
        p = TaskProgram()
        a = p.data("a", 8192)
        p.task(outs=[a])
        p.task(ins=[a])
        p.task(inouts=[a])
        p.task(ins=[a])
        res = simulate(p.finalize(), topo8, make_scheduler("las"), seed=0)
        from repro.runtime import execute_in_order

        execute_in_order(p, res.completion_order())


class TestAdversarialSchedulers:
    def test_scheduler_raising_in_choose(self, topo8, chain_program):
        class Bomb(Scheduler):
            name = "bomb"

            def choose(self, task):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            simulate(chain_program, topo8, Bomb())

    def test_scheduler_with_side_effect_timers(self, topo8):
        """Timers that enqueue more timers must not hang the simulation."""

        class Ticker(Scheduler):
            name = "ticker"
            ticks = 0

            def on_program_start(self):
                self.sim.schedule_timer(0.5, self._tick)

            def _tick(self):
                self.ticks += 1
                if self.ticks < 5:
                    self.sim.schedule_timer(0.5, self._tick)

            def choose(self, task):
                return Placement(socket=0)

        p = TaskProgram()
        p.task(work=10.0)
        sched = Ticker()
        res = simulate(p.finalize(), topo8, sched, duration_jitter=0.0)
        assert sched.ticks == 5
        assert res.makespan == pytest.approx(10.0)

    def test_all_to_one_socket_still_completes(self, topo8):
        from repro.apps import make_app

        class Pin(Scheduler):
            name = "pin"

            def choose(self, task):
                return Placement(socket=3)

        prog = make_app("jacobi", nt=3, tile=8, sweeps=2).build(8)
        res = simulate(prog, topo8, Pin(), steal=False)
        assert set(r.socket for r in res.records) == {3}


class TestPartitionerEdgeCases:
    def test_k_exceeds_vertices(self):
        """Backends reject k > n outright; callers that legitimately
        over-ask go through partition_onto's injective spread."""
        from repro.errors import PartitionError
        from repro.partition import partition_onto

        g = CSRGraph.from_edges(3, [(0, 1, 1.0)])
        with pytest.raises(PartitionError, match="cannot partition"):
            DualRecursiveBipartitioner().partition(g, 8, seed=0)
        res = partition_onto(DualRecursiveBipartitioner(), g, 8, seed=0)
        assert len(res.parts) == 3
        assert res.parts.max() < 8
        assert res.meta.get("spread") is True

    def test_star_graph(self):
        """Stars coarsen badly (matching saturates) — must still work."""
        edges = [(0, i, 1.0) for i in range(1, 40)]
        g = CSRGraph.from_edges(40, edges)
        res = DualRecursiveBipartitioner().partition(g, 4, seed=0)
        assert len(np.unique(res.parts)) >= 2

    def test_zero_weight_edges(self):
        g = CSRGraph.from_edges(4, [(0, 1, 0.0), (2, 3, 0.0)])
        res = DualRecursiveBipartitioner().partition(g, 2, seed=0)
        assert edge_cut(g, res.parts) == 0.0

    def test_single_heavy_vertex(self):
        """A vertex heavier than any balanced part must not crash or spin:
        caps are clamped to the heaviest vertex, so any total assignment is
        acceptable."""
        g = CSRGraph.from_edges(
            5, [(0, 1, 1.0)], vwgt=np.array([100.0, 1.0, 1.0, 1.0, 1.0])
        )
        res = DualRecursiveBipartitioner().partition(g, 2, seed=0)
        assert len(res.parts) == 5
        assert res.parts.max() < 2

    def test_empty_graph_partition(self):
        from repro.errors import PartitionError
        from repro.partition import partition_onto

        g = CSRGraph.from_edges(0, [])
        with pytest.raises(PartitionError, match="cannot partition"):
            DualRecursiveBipartitioner().partition(g, 4, seed=0)
        res = partition_onto(DualRecursiveBipartitioner(), g, 4, seed=0)
        assert len(res.parts) == 0


class TestErrorHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (isinstance(obj, type) and issubclass(obj, Exception)
                    and obj not in (ReproError, Exception)):
                assert issubclass(obj, ReproError), name

    def test_simulation_error_catchable_as_repro_error(self, topo8):
        p = TaskProgram()
        p.task()

        class ParkAll(Scheduler):
            name = "park"

            def choose(self, task):
                return Placement(park=True)

        with pytest.raises(ReproError):
            simulate(p.finalize(), topo8, ParkAll())
