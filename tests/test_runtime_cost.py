"""Unit tests for the cost-model helpers (LAS weighting, traffic streams)."""

import numpy as np

from repro.machine import MemoryManager
from repro.runtime import (
    TaskProgram,
    allocated_bytes_per_node,
    traffic_streams,
)


def setup():
    p = TaskProgram()
    a = p.data("a", 8192)
    b = p.data("b", 4096)
    t = p.task(ins=[a], outs=[b])
    mm = MemoryManager(4)
    for o in p.objects:
        mm.register(o.key, o.size_bytes)
    return p, t, mm


class TestAllocatedBytes:
    def test_all_unbound(self):
        _, t, mm = setup()
        per_node, unbound = allocated_bytes_per_node(t, mm)
        assert per_node.sum() == 0
        assert unbound == 8192 + 4096

    def test_partial_binding(self):
        _, t, mm = setup()
        mm.touch(0, 2)  # a on node 2
        per_node, unbound = allocated_bytes_per_node(t, mm)
        assert per_node[2] == 8192
        assert unbound == 4096

    def test_split_object(self):
        _, t, mm = setup()
        mm.touch(0, 1, offset=0, length=4096)
        mm.touch(0, 3, offset=4096, length=4096)
        per_node, _ = allocated_bytes_per_node(t, mm)
        assert per_node[1] == 4096
        assert per_node[3] == 4096


class TestTrafficStreams:
    def test_streams_after_binding(self):
        _, t, mm = setup()
        mm.touch(0, 1)
        mm.touch(1, 2)
        streams = traffic_streams(t, mm)
        assert streams == {1: 8192.0, 2: 4096.0}

    def test_inout_doubles(self):
        p = TaskProgram()
        a = p.data("a", 1000)
        t = p.task(inouts=[a])
        mm = MemoryManager(2)
        mm.register(0, 1000)
        mm.touch(0, 0)
        assert traffic_streams(t, mm) == {0: 2000.0}

    def test_unbound_bytes_not_charged(self):
        _, t, mm = setup()
        streams = traffic_streams(t, mm)
        assert streams == {}
