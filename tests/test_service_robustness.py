"""Service failure paths (DESIGN.md §12 robustness state machine).

Covers every transition the issue demands: worker SIGKILL mid-job
(retry + re-dispatch), deadline expiry (running and queued), queue-full
shedding, duplicate-submission coalescing, poison-job quarantine, and
the SIGTERM drain / journal-resume round trip.
"""

import asyncio
import os
import signal
import time

import pytest

from repro.errors import QueueFullError, PoisonJobError, ShuttingDownError
from repro.service import (
    JobState,
    ServiceConfig,
    SimulationService,
)

TINY = {"n_blocks": 6, "block_elems": 1024, "iterations": 2}


def tiny_spec(seed=0, **overrides):
    spec = {"app": "nstream", "policy": "las", "seed": seed,
            "app_params": dict(TINY)}
    spec.update(overrides)
    return spec


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


async def make_service(**config_overrides):
    defaults = dict(workers=1, queue_capacity=8,
                    retry_base_s=0.02, retry_max_s=0.2)
    defaults.update(config_overrides)
    service = SimulationService(ServiceConfig(**defaults))
    await service.start()
    return service


class TestHappyPath:
    def test_submit_run_done_and_cache_hit(self, tmp_path):
        async def scenario():
            service = await make_service(data_dir=tmp_path)
            try:
                record = service.submit(tiny_spec(seed=1))
                assert record.state == JobState.QUEUED
                record = await service.wait(record.job_id)
                assert record.state == JobState.DONE
                assert record.result["makespan"] > 0
                # same canonical request -> served from cache, new job id
                dup = service.submit(tiny_spec(seed=1))
                assert dup.state == JobState.DONE
                assert dup.cached
                assert dup.job_id != record.job_id
                assert dup.result == record.result
                stats = service.stats()
                assert stats["counters"]["service.cache.hits"] == 1
                return True
            finally:
                await service.stop()

        assert run(scenario())

    def test_sim_error_fails_without_retry(self):
        async def scenario():
            service = await make_service()
            try:
                # unknown scheduler kwarg -> deterministic library error
                record = service.submit(
                    tiny_spec(seed=2, sched_kwargs={"bogus_kwarg": 1})
                )
                record = await service.wait(record.job_id)
                assert record.state == JobState.FAILED
                assert record.attempts == 1  # deterministic: no retry
                assert record.error
                return True
            finally:
                await service.stop()

        assert run(scenario())


class TestWorkerCrash:
    def test_sigkill_mid_job_retried_to_completion(self):
        async def scenario():
            service = await make_service(workers=1)
            try:
                record = service.submit(
                    tiny_spec(seed=3, chaos={"sleep_s": 0.6})
                )
                # wait until the job is actually on the worker, then murder it
                for _ in range(200):
                    if record.state == JobState.RUNNING:
                        break
                    await asyncio.sleep(0.01)
                assert record.state == JobState.RUNNING
                (pid,) = service.pool.pids()
                os.kill(pid, signal.SIGKILL)
                record = await service.wait(record.job_id)
                assert record.state == JobState.DONE
                assert record.crashes == 1
                assert record.attempts == 2
                counters = service.stats()["counters"]
                assert counters["service.retries"] == 1
                assert counters["service.workers.crashed"] == 1
                assert service.pool.replacements >= 1
                return True
            finally:
                await service.stop()

        assert run(scenario())

    def test_worker_killed_between_jobs_heals_silently(self):
        async def scenario():
            service = await make_service(workers=1)
            try:
                (pid,) = service.pool.pids()
                os.kill(pid, signal.SIGKILL)
                time.sleep(0.05)
                record = service.submit(tiny_spec(seed=4))
                record = await service.wait(record.job_id)
                assert record.state == JobState.DONE
                assert record.crashes == 0  # job never saw the dead worker
                return True
            finally:
                await service.stop()

        assert run(scenario())


class TestDeadlines:
    def test_running_job_killed_at_deadline(self):
        async def scenario():
            service = await make_service(workers=1)
            try:
                record = service.submit(
                    tiny_spec(seed=5, chaos={"sleep_s": 30.0},
                              deadline_s=0.3)
                )
                t0 = time.monotonic()
                record = await service.wait(record.job_id)
                elapsed = time.monotonic() - t0
                assert record.state == JobState.FAILED
                assert "deadline" in record.error
                assert elapsed < 5.0  # killed, not waited out
                # the worker that ran it was replaced and still serves
                follow_up = service.submit(tiny_spec(seed=6))
                follow_up = await service.wait(follow_up.job_id)
                assert follow_up.state == JobState.DONE
                return True
            finally:
                await service.stop()

        assert run(scenario())

    def test_deadline_expired_while_queued_is_shed(self):
        async def scenario():
            service = await make_service(workers=1)
            try:
                # occupy the only worker...
                blocker = service.submit(
                    tiny_spec(seed=7, chaos={"sleep_s": 0.6})
                )
                # ...so this one's deadline burns out in the queue
                stale = service.submit(tiny_spec(seed=8, deadline_s=0.05))
                stale = await service.wait(stale.job_id)
                assert stale.state == JobState.SHED
                assert "queued" in stale.error
                blocker = await service.wait(blocker.job_id)
                assert blocker.state == JobState.DONE
                return True
            finally:
                await service.stop()

        assert run(scenario())


class TestBackpressure:
    def test_queue_full_sheds_with_retry_after(self):
        async def scenario():
            service = await make_service(workers=1, queue_capacity=1)
            try:
                running = service.submit(
                    tiny_spec(seed=9, chaos={"sleep_s": 0.5})
                )
                # let the worker pick it up so the queue is truly empty
                for _ in range(100):
                    if running.state == JobState.RUNNING:
                        break
                    await asyncio.sleep(0.01)
                service.submit(tiny_spec(seed=10))  # fills the queue
                with pytest.raises(QueueFullError) as info:
                    service.submit(tiny_spec(seed=11))
                assert info.value.retry_after_s > 0
                counters = service.stats()["counters"]
                assert counters["service.jobs.shed"] == 1
                return True
            finally:
                await service.stop()

        assert run(scenario())

    def test_rate_limit_per_tenant(self):
        from repro.errors import RateLimitError

        async def scenario():
            service = await make_service(rate_per_s=0.001, burst=1.0)
            try:
                service.submit(tiny_spec(seed=12, tenant="alice"))
                with pytest.raises(RateLimitError):
                    service.submit(tiny_spec(seed=13, tenant="alice"))
                # a different tenant is unaffected
                service.submit(tiny_spec(seed=14, tenant="bob"))
                counters = service.stats()["counters"]
                assert counters["service.jobs.rate_limited"] == 1
                return True
            finally:
                await service.stop()

        assert run(scenario())


class TestCoalescing:
    def test_duplicate_submission_shares_one_execution(self):
        async def scenario():
            service = await make_service(workers=1)
            try:
                spec = tiny_spec(seed=15, chaos={"sleep_s": 0.3})
                first = service.submit(spec)
                second = service.submit(spec)
                assert second.job_id == first.job_id  # coalesced
                record = await service.wait(first.job_id)
                assert record.state == JobState.DONE
                counters = service.stats()["counters"]
                assert counters["service.jobs.coalesced"] == 1
                assert counters["service.jobs.done"] == 1  # ran once
                return True
            finally:
                await service.stop()

        assert run(scenario())


class TestQuarantine:
    def test_poison_job_quarantined_with_artifact(self, tmp_path):
        async def scenario():
            service = await make_service(
                workers=1, data_dir=tmp_path, poison_threshold=2
            )
            try:
                poison = tiny_spec(seed=16, chaos={"kill_worker": True})
                record = service.submit(poison)
                record = await service.wait(record.job_id)
                assert record.state == JobState.QUARANTINED
                assert record.crashes == 2
                artifact = tmp_path / "quarantine" / f"{record.hash}.json"
                assert artifact.exists()
                import json

                diagnostic = json.loads(artifact.read_text())
                assert diagnostic["crashes"] == 2
                assert diagnostic["spec"]["chaos"] == {"kill_worker": True}
                # never retried again: resubmission resolves instantly
                again = service.submit(poison)
                assert again.state == JobState.QUARANTINED
                assert again.job_id == record.job_id
                with pytest.raises(PoisonJobError):
                    service.get_result(record.hash)
                # ...and the service still works for honest jobs
                ok = service.submit(tiny_spec(seed=17))
                ok = await service.wait(ok.job_id)
                assert ok.state == JobState.DONE
                return True
            finally:
                await service.stop()

        assert run(scenario())

    def test_quarantine_survives_restart(self, tmp_path):
        async def scenario():
            service = await make_service(
                workers=1, data_dir=tmp_path, poison_threshold=1
            )
            poison = tiny_spec(seed=18, chaos={"kill_worker": True})
            record = service.submit(poison)
            record = await service.wait(record.job_id)
            assert record.state == JobState.QUARANTINED
            await service.stop()

            reborn = await make_service(workers=1, data_dir=tmp_path)
            try:
                again = reborn.submit(poison)
                assert again.state == JobState.QUARANTINED  # not re-run
                return True
            finally:
                await reborn.stop()

        assert run(scenario())


class TestBoundedRetention:
    def test_terminal_records_and_events_are_evicted(self):
        async def scenario():
            service = await make_service(workers=1, max_records=3)
            try:
                for seed in range(40, 46):
                    record = service.submit(tiny_spec(seed=seed))
                    record = await service.wait(record.job_id)
                    assert record.state == JobState.DONE
                # one-shot events are dropped at completion, terminal
                # records beyond max_records are evicted oldest-first
                assert not service._events
                assert len(service.records) <= 3
                assert "j-6" in service.records  # newest survives
                return True
            finally:
                await service.stop()

        assert run(scenario())

    def test_quarantined_records_survive_eviction(self, tmp_path):
        async def scenario():
            service = await make_service(
                workers=1, data_dir=tmp_path,
                poison_threshold=1, max_records=1,
            )
            try:
                poison = tiny_spec(seed=50, chaos={"kill_worker": True})
                record = service.submit(poison)
                record = await service.wait(record.job_id)
                assert record.state == JobState.QUARANTINED
                for seed in range(51, 54):
                    ok = service.submit(tiny_spec(seed=seed))
                    await service.wait(ok.job_id)
                # eviction churned past max_records, but the poison
                # record is exempt: resubmission still short-circuits
                again = service.submit(poison)
                assert again.state == JobState.QUARANTINED
                assert again.job_id == record.job_id
                return True
            finally:
                await service.stop()

        assert run(scenario())


class TestWorkerStartMethod:
    def test_pool_never_uses_plain_fork(self):
        # pool workers are (re)started from asyncio.to_thread threads;
        # plain fork of a multi-threaded process can deadlock the child
        from repro.service.pool import WorkerPool

        pool = WorkerPool(1)
        assert pool._ctx.get_start_method() in ("forkserver", "spawn")


class TestDrainAndResume:
    def test_drain_rejects_new_finishes_running(self, tmp_path):
        async def scenario():
            service = await make_service(workers=1, data_dir=tmp_path)
            record = service.submit(
                tiny_spec(seed=19, chaos={"sleep_s": 0.3})
            )
            for _ in range(100):
                if record.state == JobState.RUNNING:
                    break
                await asyncio.sleep(0.01)
            drain = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.02)
            assert not service.ready()
            with pytest.raises(ShuttingDownError):
                service.submit(tiny_spec(seed=20))
            await drain
            assert record.state == JobState.DONE  # running job finished
            return True

        assert run(scenario())

    def test_recovery_with_more_jobs_than_queue_capacity(self, tmp_path):
        """An unclean crash can journal more unfinished submits than
        queue_capacity (queued + running + retrying).  Recovery must
        bypass the capacity check — not raise QueueFullError on every
        start() in a permanent crash-loop."""
        from repro.service.jobs import JobSpec
        from repro.service.journal import Journal

        async def scenario():
            journal = Journal(tmp_path / "journal.jsonl")
            n_jobs = 5
            for i in range(1, n_jobs + 1):
                spec = JobSpec.from_dict(tiny_spec(seed=60 + i)).validated()
                journal.append({
                    "kind": "submit", "id": f"j-{i}",
                    "hash": spec.content_hash(), "spec": spec.to_dict(),
                    "t": 0.0,
                })
            journal.close()

            service = SimulationService(ServiceConfig(
                workers=1, queue_capacity=2, data_dir=tmp_path,
            ))
            await service.start()  # must not raise despite 5 > capacity 2
            try:
                assert service.queue.depth == n_jobs
                for i in range(1, n_jobs + 1):
                    record = await service.wait(f"j-{i}")
                    assert record.state == JobState.DONE
                counters = service.stats()["counters"]
                assert counters["service.jobs.resumed"] == n_jobs
                return True
            finally:
                await service.stop()

        assert run(scenario())

    def test_restart_resumes_queued_jobs_and_keeps_results(self, tmp_path):
        async def scenario():
            service = await make_service(workers=1, data_dir=tmp_path)
            done = service.submit(tiny_spec(seed=21))
            done = await service.wait(done.job_id)
            assert done.state == JobState.DONE
            # accepted but never run: the worker is busy, then we stop hard
            service.submit(tiny_spec(seed=22, chaos={"sleep_s": 5.0}))
            pending = service.submit(tiny_spec(seed=23))
            await asyncio.sleep(0.05)
            await service.stop()  # crash-like: no drain, no checkpoint

            reborn = await make_service(workers=1, data_dir=tmp_path)
            try:
                # completed result survived (cache) without re-running
                hit = reborn.submit(tiny_spec(seed=21))
                assert hit.state == JobState.DONE
                assert hit.cached
                assert hit.result == done.result  # bit-identical
                # the never-run job was resumed from the journal
                resumed = reborn.get_job(pending.job_id)
                terminal = await reborn.wait(pending.job_id)
                assert terminal.state == JobState.DONE
                assert resumed.job_id == pending.job_id
                counters = reborn.stats()["counters"]
                assert counters["service.jobs.resumed"] >= 1
                return True
            finally:
                await reborn.stop()

        assert run(scenario())
