"""Metamorphic laws + hypothesis-driven differential fuzzing.

Metamorphic testing needs no oracle for the *absolute* schedule — only
relations between runs that must hold exactly:

* scaling every task's work by a power of two scales a compute-only
  FIFO makespan by exactly that factor (floats are exact under
  power-of-two multiplication);
* task names are decoration — relabeling changes nothing;
* a fully symmetric machine makes EP placement equivariant under socket
  permutation, so the makespan is invariant;
* a serial chain leaves any work-conserving policy no choice — LAS and
  DFIFO produce the same makespan;
* an empty :class:`FaultPlan` is byte-identical to ``faults=None``.

On top of the laws, hypothesis-generated programs are diffed against the
reference oracle (shrinking gives a minimal counterexample on failure).
"""

from __future__ import annotations

import numpy as np
import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.machine import two_socket
from repro.machine.interconnect import Interconnect
from repro.machine.topology import NumaTopology, uniform_distance_matrix
from repro.runtime import Simulator, TaskProgram
from repro.schedulers import make_scheduler
from repro.verify import VerifyCase, make_case, make_strategies, run_case

strategies = make_strategies()

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _compute_only(works):
    """A dependence-free compute-only program (no objects, no traffic)."""
    prog = TaskProgram("meta")
    for i, w in enumerate(works):
        prog.task(f"t{i}", work=w)
    return prog.finalize()


def _run(program, scheduler, topo=None, **kwargs):
    topo = topo or two_socket(cores_per_socket=2)
    kwargs.setdefault("steal", False)
    return Simulator(
        program, topo, make_scheduler(scheduler),
        interconnect=Interconnect(topo), seed=0, **kwargs,
    ).run()


# ----------------------------------------------------------------------
# Law 1: power-of-two work scaling is exactly linear (compute-only FIFO)
# ----------------------------------------------------------------------
@_SETTINGS
@given(
    works=st.lists(st.sampled_from([0.125, 0.25, 0.5, 1.0, 2.0]),
                   min_size=1, max_size=12),
    scale=st.sampled_from([2.0, 4.0, 0.5]),
)
def test_power_of_two_work_scaling(works, scale):
    base = _run(_compute_only(works), "dfifo")
    scaled = _run(_compute_only([w * scale for w in works]), "dfifo")
    assert scaled.makespan == base.makespan * scale


# ----------------------------------------------------------------------
# Law 2: task names are decoration
# ----------------------------------------------------------------------
@_SETTINGS
@given(data=st.data())
def test_task_relabel_invariance(data):
    program = data.draw(strategies.programs(n_sockets=2, max_tasks=10))

    def rebuild(suffix):
        from repro.runtime.data import DataAccess

        prog = TaskProgram("relabel")
        objs = {}
        for obj in program.objects:
            objs[obj.key] = prog.data(
                f"{obj.name}{suffix}", obj.size_bytes,
                initial_node=obj.initial_node,
                interleaved=obj.interleaved,
            )

        def clone(task, mode):
            return [
                DataAccess(objs[a.obj.key], a.mode, a.offset, a.length)
                for a in task.accesses if a.mode.name == mode
            ]

        epoch = 0
        for task in program.tasks:
            while task.epoch > epoch:
                prog.barrier()
                epoch += 1
            prog.task(
                f"{task.name}{suffix}",
                ins=clone(task, "IN"),
                outs=clone(task, "OUT"),
                inouts=clone(task, "INOUT"),
                work=task.work,
                meta=dict(task.meta),
            )
        return prog.finalize()

    res_a = _run(rebuild(""), "las")
    res_b = _run(rebuild("_renamed_xyz"), "las")
    recs_a = [(r.tid, r.core, r.start, r.finish) for r in res_a.records]
    recs_b = [(r.tid, r.core, r.start, r.finish) for r in res_b.records]
    assert recs_a == recs_b


# ----------------------------------------------------------------------
# Law 3: EP is equivariant under socket permutation on a symmetric machine
# ----------------------------------------------------------------------
@_SETTINGS
@given(
    perm_seed=st.integers(0, 1000),
    n_lanes=st.integers(2, 6),
)
def test_ep_socket_permutation_invariance(perm_seed, n_lanes):
    n_sockets = 3
    topo = NumaTopology(
        n_sockets=n_sockets, cores_per_socket=2,
        distance=uniform_distance_matrix(n_sockets, remote=20.0),
        node_bandwidth=1e6, name="sym",
    )
    perm = np.random.default_rng(perm_seed).permutation(n_sockets)

    def build(mapping):
        prog = TaskProgram("ep")
        for i in range(n_lanes):
            a = prog.data(f"a{i}", 65536)
            s = int(mapping[i % n_sockets])
            prog.task(f"p{i}", outs=[a], work=0.5, meta={"ep_socket": s})
            prog.task(f"c{i}", ins=[a], work=0.5, meta={"ep_socket": s})
        return prog.finalize()

    base = _run(build(np.arange(n_sockets)), "ep", topo=topo)
    permuted = _run(build(perm), "ep", topo=topo)
    assert permuted.makespan == base.makespan
    assert permuted.local_bytes == base.local_bytes
    assert permuted.remote_bytes == base.remote_bytes


# ----------------------------------------------------------------------
# Law 4: a serial chain leaves no scheduling freedom
# ----------------------------------------------------------------------
@_SETTINGS
@given(
    works=st.lists(st.sampled_from([0.1, 0.3, 0.7, 1.0]),
                   min_size=1, max_size=10),
)
def test_serial_chain_policy_invariance(works):
    def chain():
        prog = TaskProgram("serial")
        a = prog.data("a", 4096)
        for i, w in enumerate(works):
            prog.task(f"t{i}", inouts=[a], work=w)
        return prog.finalize()

    las = _run(chain(), "las")
    dfifo = _run(chain(), "dfifo")
    assert las.makespan == pytest.approx(dfifo.makespan, rel=1e-12)


# ----------------------------------------------------------------------
# Law 5: an empty fault plan is byte-identical to no injector at all
# ----------------------------------------------------------------------
@_SETTINGS
@given(data=st.data())
def test_empty_fault_plan_is_identity(data):
    program = data.draw(strategies.programs(n_sockets=2, max_tasks=8))
    res_none = _run(program, "las", duration_jitter=0.05)
    res_empty = _run(program, "las", duration_jitter=0.05,
                     faults=FaultPlan())
    assert [(r.tid, r.core, r.start, r.finish) for r in res_none.records] \
        == [(r.tid, r.core, r.start, r.finish) for r in res_empty.records]
    assert res_none.makespan == res_empty.makespan
    assert np.array_equal(res_none.bytes_by_pair, res_empty.bytes_by_pair)


# ----------------------------------------------------------------------
# Hypothesis-driven differential fuzz (shrinks to a minimal case)
# ----------------------------------------------------------------------
@_SETTINGS
@given(data=st.data(), scheduler=st.sampled_from(["dfifo", "las", "rgp+las"]))
def test_generated_cases_match_oracle(data, scheduler):
    topo = data.draw(strategies.topologies())
    program = data.draw(
        strategies.programs(n_sockets=topo.n_sockets, max_tasks=10)
    )
    kwargs = {"window_size": 8} if scheduler.startswith("rgp") else {}
    case = VerifyCase(
        program=program, topology=topo, scheduler=scheduler,
        scheduler_kwargs=kwargs, interconnect_kwargs={},
        sim_kwargs={"seed": data.draw(st.integers(0, 100)),
                    "duration_jitter": data.draw(st.sampled_from([0.0, 0.05]))},
        label=f"hyp-{scheduler}",
    )
    report = run_case(case)
    assert report.status in ("ok", "production-error"), report.summary()


@_SETTINGS
@given(data=st.data())
def test_generated_faulted_cases_match_oracle(data):
    topo = two_socket(cores_per_socket=2)
    program = data.draw(strategies.programs(n_sockets=2, max_tasks=8))
    plan = data.draw(strategies.fault_plans(n_cores=4, n_nodes=2))
    case = VerifyCase(
        program=program, topology=topo, scheduler="las",
        scheduler_kwargs={}, interconnect_kwargs={},
        sim_kwargs={"seed": 3, "max_retries": 10},
        faults=plan, label="hyp-faulted",
    )
    report = run_case(case)
    assert report.status in ("ok", "production-error"), report.summary()


# ----------------------------------------------------------------------
# The fuzz driver itself
# ----------------------------------------------------------------------
def test_fuzz_driver_smoke(tmp_path):
    from repro.verify import fuzz

    report = fuzz(2, out_dir=str(tmp_path))
    assert report.ok, report.summary()
    from repro.verify.fuzz import POLICY_MATRIX

    assert report.n_cases == 2 * len(POLICY_MATRIX)
    assert not list(tmp_path.iterdir())  # no divergences, no repro files


def test_fuzz_policy_filter():
    from repro.verify import fuzz

    report = fuzz(1, policies=["dfifo", "las"])
    assert report.n_cases == 2
    with pytest.raises(ValueError):
        fuzz(1, policies=["no-such-policy"])


def test_fuzz_budget_stops_early():
    from repro.verify import fuzz

    report = fuzz(10_000, budget_s=0.0)
    assert report.budget_exhausted
    assert len(report.seeds) <= 1
