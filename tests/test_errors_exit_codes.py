"""CLI exit-code contract: every ReproError maps to a documented code."""

import pytest

from repro.errors import (
    ApplicationError,
    BenchmarkError,
    DeadlineExceededError,
    ExperimentError,
    FaultError,
    JobSpecError,
    PartitionTimeoutError,
    PoisonJobError,
    QueueFullError,
    RateLimitError,
    ReproError,
    SchedulerError,
    ServiceError,
    TopologyError,
    VerificationError,
    exit_code_for,
)


class TestExitCodeMapping:
    @pytest.mark.parametrize("exc,code", [
        (ApplicationError("x"), 2),
        (TopologyError("x"), 2),
        (SchedulerError("x"), 2),
        (ExperimentError("x"), 2),
        (PartitionTimeoutError("x"), 3),
        (VerificationError("x"), 4),
        (FaultError("x"), 5),
        (BenchmarkError("x"), 6),
        (ServiceError("x"), 7),
        (JobSpecError("x"), 7),
        (QueueFullError("x"), 7),
        (RateLimitError("x"), 7),
        (PoisonJobError("x"), 7),
        (DeadlineExceededError("x"), 7),
    ])
    def test_documented_codes(self, exc, code):
        assert exit_code_for(exc) == code

    def test_base_repro_error_is_generic_failure(self):
        assert exit_code_for(ReproError("x")) == 1

    def test_non_repro_error_is_generic_failure(self):
        assert exit_code_for(ValueError("x")) == 1

    def test_most_derived_class_wins(self):
        """PartitionTimeoutError subclasses FaultError: the specific
        code (3), not the fault code (5), must win."""
        assert issubclass(PartitionTimeoutError, FaultError)
        assert exit_code_for(PartitionTimeoutError("x")) == 3

    def test_config_code_matches_argparse(self):
        # argparse exits with 2 on bad usage; config errors share that
        # "the request was wrong" meaning deliberately
        from repro.errors import EXIT_CONFIG

        assert EXIT_CONFIG == 2


class TestMainUsesExitCodes:
    def test_service_error_from_submit_maps_to_7(self, capsys):
        from repro.cli import main

        # nothing listens on this port -> ServiceError -> exit 7
        code = main(["submit", "--app", "nstream", "--scheduler", "las",
                     "--port", "1", "--host", "127.0.0.1"])
        assert code == 7
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_debug_reraises_service_error(self):
        from repro.cli import main

        with pytest.raises(ServiceError):
            main(["--debug", "submit", "--app", "nstream",
                  "--scheduler", "las", "--port", "1",
                  "--host", "127.0.0.1"])
