"""Sanity checks on the shipped experiment configurations.

The committed numbers in EXPERIMENTS.md depend on these staying sane: the
paper-scale programs must be big enough to exercise the window yet small
enough that the benchmark suite completes in minutes.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.config import FIGURE1_APPS, PAPER_APP_PARAMS
from repro.experiments.runner import build_program


@pytest.fixture(scope="module")
def paper_programs():
    cfg = ExperimentConfig.paper()
    return {app: build_program(cfg, app) for app in FIGURE1_APPS}


class TestPaperScale:
    def test_task_counts_in_budget(self, paper_programs):
        """Each app: enough tasks to be interesting, few enough to be fast."""
        for app, prog in paper_programs.items():
            assert 300 <= prog.n_tasks <= 6000, (app, prog.n_tasks)

    def test_parallelism_exceeds_machine(self, paper_programs):
        """Every app must be able to keep 32 cores busy at least once."""
        from repro.graph import level_widths

        for app, prog in paper_programs.items():
            assert level_widths(prog.tdg).max() >= 32, app

    def test_window_covers_meaningful_prefix(self, paper_programs):
        cfg = ExperimentConfig.paper()
        for app, prog in paper_programs.items():
            cutoff = prog.first_partition_point(cfg.window_size)
            assert cutoff >= 64, (app, cutoff)

    def test_memory_bound_apps_are_memory_bound(self, paper_programs):
        """NStream / jacobi / histogram tasks carry far more memory time
        than compute (at the calibrated core bandwidth)."""
        core_bw = 0.30 * 1_000_000.0
        for app in ("nstream", "jacobi", "histogram"):
            prog = paper_programs[app]
            heavy = max(prog.tasks, key=lambda t: t.traffic_bytes)
            mem_time = heavy.traffic_bytes / core_bw
            assert mem_time > 3 * heavy.work, app

    def test_qr_much_more_compute_intense_than_nstream(self, paper_programs):
        """QR's compute/memory ratio must dwarf NStream's — the contrast
        behind Figure 1's flat QR bars."""
        core_bw = 0.30 * 1_000_000.0

        def intensity(task):
            return task.work / (task.traffic_bytes / core_bw)

        qr_kernel = next(t for t in paper_programs["qr"].tasks
                         if t.name.startswith("ssrfb"))
        triad = next(t for t in paper_programs["nstream"].tasks
                     if t.name.startswith("triad"))
        assert intensity(qr_kernel) > 10 * intensity(triad)

    def test_every_app_supports_ep(self, paper_programs):
        for app, prog in paper_programs.items():
            sockets = {t.meta.get("ep_socket") for t in prog.tasks}
            assert None not in sockets, app
            assert len(sockets) == 8, app

    def test_quick_strictly_smaller(self):
        quick = ExperimentConfig.quick()
        for app in FIGURE1_APPS:
            quick_prog = build_program(quick, app)
            assert quick_prog.n_tasks <= 2500, app

    def test_paper_params_cover_figure1_apps(self):
        assert set(PAPER_APP_PARAMS) == set(FIGURE1_APPS)
