"""Property-based tests (hypothesis) for the runtime and simulator.

Random programs with random dependence structures must always simulate to
completion, respect every dependence, account traffic exactly, and produce
the same numerical results under any scheduler.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import bullion_s16, two_socket
from repro.runtime import TaskProgram, execute_in_order, simulate
from repro.schedulers import make_scheduler

TOPO2 = two_socket(cores_per_socket=2)
TOPO8 = bullion_s16()


@st.composite
def programs(draw, max_objects=6, max_tasks=25):
    """Random task programs with arbitrary in/out/inout patterns."""
    n_objects = draw(st.integers(min_value=1, max_value=max_objects))
    n_tasks = draw(st.integers(min_value=1, max_value=max_tasks))
    prog = TaskProgram("random")
    objs = [
        prog.data(f"o{i}", draw(st.integers(min_value=1024, max_value=262144)))
        for i in range(n_objects)
    ]
    for t in range(n_tasks):
        if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
            prog.barrier()
        n_acc = draw(st.integers(min_value=0, max_value=3))
        ins, outs, inouts = [], [], []
        used = set()
        for _ in range(n_acc):
            oi = draw(st.integers(0, n_objects - 1))
            if oi in used:
                continue
            used.add(oi)
            kind = draw(st.sampled_from(["in", "out", "inout"]))
            (ins if kind == "in" else outs if kind == "out" else inouts).append(
                objs[oi]
            )
        prog.task(
            f"t{t}", ins=ins, outs=outs, inouts=inouts,
            work=draw(st.floats(min_value=0.0, max_value=2.0,
                                allow_nan=False)),
        )
    return prog.finalize()


POLICY = st.sampled_from(["dfifo", "las", "ep", "random", "rgp+las"])


def _annotate_ep(prog):
    for t in prog.tasks:
        t.meta.setdefault("ep_socket", t.tid % 8)


@given(programs(), POLICY, st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_simulation_completes_and_respects_dependences(prog, policy, seed):
    _annotate_ep(prog)
    kwargs = {"window_size": 8} if policy.startswith("rgp") else {}
    res = simulate(prog, TOPO8, make_scheduler(policy, **kwargs), seed=seed)
    assert res.n_tasks == prog.n_tasks
    # Completion order is a legal topological + barrier-respecting order.
    execute_in_order(prog, res.completion_order())
    # Start-after-predecessor-finish, checked directly on the records.
    rec = {r.tid: r for r in res.records}
    for src, dst, _ in prog.tdg.edges():
        assert rec[dst].start >= rec[src].finish - 1e-6


@given(programs(), st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_traffic_accounted_exactly(prog, seed):
    res = simulate(prog, TOPO2, make_scheduler("las"), seed=seed,
                   duration_jitter=0.0)
    assert res.total_traffic == prog.total_traffic_bytes()
    assert res.local_bytes >= 0 and res.remote_bytes >= -1e-9


@given(programs(), st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_makespan_lower_bounds(prog, seed):
    """Makespan >= critical path of compute work and >= total work / cores."""
    from repro.graph import critical_path_weight

    res = simulate(prog, TOPO2, make_scheduler("random"), seed=seed,
                   duration_jitter=0.0)
    cp = critical_path_weight(prog.tdg)
    # Node weights in the TDG are max(work, eps), so cp is a valid bound.
    assert res.makespan >= cp - 1e-6
    assert res.makespan >= prog.total_work() / TOPO2.n_cores - 1e-6


@given(programs(), st.integers(min_value=0, max_value=50))
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic(prog, seed):
    a = simulate(prog, TOPO8, make_scheduler("las"), seed=seed)
    b = simulate(prog, TOPO8, make_scheduler("las"), seed=seed)
    assert a.makespan == b.makespan
    assert a.completion_order() == b.completion_order()


@given(programs())
@settings(max_examples=30, deadline=None)
def test_memory_never_double_binds(prog):
    """After a run every object's pages are bound at most once: total bound
    bytes equal page-rounded object footprints of touched objects."""
    from repro.runtime.simulator import Simulator

    sim = Simulator(prog, TOPO2, make_scheduler("las"), seed=0)
    sim.run()
    page = sim.memory.page_size
    total_bound = int(sim.memory.bytes_on_node.sum())
    expected_max = sum(
        -(-o.size_bytes // page) * page for o in prog.objects
    )
    assert total_bound <= expected_max
