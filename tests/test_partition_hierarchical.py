"""Two-level (cluster-aware) partitioning: contracts and repair passes.

The hierarchical partitioner cuts across boxes first, then within each
box, with a dominant-edge pre-contraction so producer/consumer chains can
never be split by the network-tier cut (the jacobi double-buffer
pathology: once a tile's init and first sweep land on different boxes,
first-touch binding makes one buffer permanently remote).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import CSRGraph, grid_graph
from repro.machine import cluster, two_socket
from repro.partition import (
    HierarchicalPartitioner,
    TargetArchitecture,
    topology_groups,
)
from repro.partition.hierarchical import _contract_dominant
from repro.runtime import Simulator
from repro.schedulers import make_scheduler


def paired_graph(n_pairs: int = 16, heavy: float = 100.0, light: float = 1.0):
    """``n_pairs`` producer/consumer pairs in a light ring.

    Each pair is joined by an edge that dwarfs everything else incident to
    its endpoints — exactly the structure the contraction must protect.
    """
    edges = []
    for i in range(n_pairs):
        u, v = 2 * i, 2 * i + 1
        edges.append((u, v, heavy))
        w = 2 * ((i + 1) % n_pairs)
        edges.append((v, w, light))
    return CSRGraph.from_edges(2 * n_pairs, edges, np.ones(2 * n_pairs))


@pytest.fixture(scope="module")
def topo4():
    return cluster(2)  # 4 sockets, boxes {0,1} and {2,3}


@pytest.fixture(scope="module")
def target4(topo4):
    return TargetArchitecture.from_topology(topo4)


class TestTopologyGroups:
    def test_cluster_groups_follow_boxes(self):
        assert topology_groups(cluster(3)) == [[0, 1], [2, 3], [4, 5]]

    def test_single_box_groups_are_singletons(self):
        assert topology_groups(two_socket()) == [[0], [1]]


class TestConstructionGuards:
    def test_empty_groups_rejected(self):
        with pytest.raises(PartitionError):
            HierarchicalPartitioner([])
        with pytest.raises(PartitionError):
            HierarchicalPartitioner([[0], []])

    def test_overlapping_groups_rejected(self):
        with pytest.raises(PartitionError):
            HierarchicalPartitioner([[0, 1], [1, 2]])

    def test_gapped_groups_rejected(self):
        with pytest.raises(PartitionError):
            HierarchicalPartitioner([[0], [2]])

    def test_k_must_match_socket_count(self, topo4):
        part = HierarchicalPartitioner.for_topology(topo4)
        g = CSRGraph.from_tdg(grid_graph(8, 8))
        with pytest.raises(PartitionError, match="built for 4 sockets"):
            part.partition(g, 3)


class TestPartitionContract:
    def test_grid_partition_in_range_and_balanced(self, topo4, target4):
        g = CSRGraph.from_tdg(grid_graph(16, 16))
        part = HierarchicalPartitioner.for_topology(topo4, tolerance=0.1)
        res = part.partition(g, 4, target=target4, seed=0)
        assert res.k == 4
        assert len(res) == g.n_vertices
        assert res.parts.min() >= 0 and res.parts.max() < 4
        sizes = np.bincount(res.parts, weights=g.vwgt, minlength=4)
        ideal = g.vwgt.sum() / 4
        # Repair passes keep balance within tolerance plus one vertex.
        assert sizes.max() <= ideal * 1.1 + g.vwgt.max()

    def test_dominant_pairs_stay_in_one_box(self, topo4, target4):
        g = paired_graph()
        part = HierarchicalPartitioner.for_topology(topo4)
        res = part.partition(g, 4, target=target4, seed=0)
        box = res.parts // topo4.sockets_per_box
        for i in range(g.n_vertices // 2):
            assert box[2 * i] == box[2 * i + 1], (
                f"pair {i} split across boxes: sockets "
                f"{res.parts[2 * i]} vs {res.parts[2 * i + 1]}"
            )

    def test_deterministic_per_seed(self, topo4, target4):
        g = CSRGraph.from_tdg(grid_graph(12, 12))
        part = HierarchicalPartitioner.for_topology(topo4)
        a = part.partition(g, 4, target=target4, seed=3)
        b = part.partition(g, 4, target=target4, seed=3)
        assert np.array_equal(a.parts, b.parts)


class TestContractDominant:
    def test_heavy_edge_contracts_light_does_not(self):
        # 0 -10- 1 -1- 2: vertex 0's only edge dominates, so {0,1} merge;
        # vertex 2's only edge dominates too, so everything chains into
        # one cluster when the weight limit allows it.
        g = CSRGraph.from_edges(
            3, [(0, 1, 10.0), (1, 2, 1.0)], np.ones(3)
        )
        cluster_of, coarse = _contract_dominant(g, weight_limit=3.0)
        assert coarse.n_vertices == 1
        assert len(set(cluster_of.tolist())) == 1

    def test_weight_limit_stops_snowballing(self):
        g = CSRGraph.from_edges(
            3, [(0, 1, 10.0), (1, 2, 1.0)], np.ones(3)
        )
        cluster_of, coarse = _contract_dominant(g, weight_limit=2.5)
        assert coarse.n_vertices == 2
        assert cluster_of[0] == cluster_of[1]
        assert cluster_of[2] != cluster_of[0]
        # Contracted weights are the summed originals.
        assert sorted(coarse.vwgt.tolist()) == [1.0, 2.0]

    def test_balanced_edges_do_not_contract(self):
        # Middle vertex sees two equal edges: neither dominates (the
        # dominance test is strict), endpoints each see one dominant edge
        # but capacity-limited unions keep at least two clusters.
        g = CSRGraph.from_edges(
            3, [(0, 1, 5.0), (1, 2, 5.0)], np.ones(3)
        )
        cluster_of, coarse = _contract_dominant(g, weight_limit=2.0)
        assert coarse.n_vertices == 2

    def test_cross_cluster_edges_survive_coalesced(self):
        g = paired_graph(n_pairs=4)
        cluster_of, coarse = _contract_dominant(g, weight_limit=2.0)
        assert coarse.n_vertices == 4  # one cluster per pair
        # Ring of light edges between pairs survives.
        assert coarse.n_edges > 0


class TestSingleBoxEquivalence:
    def test_rgp_hierarchical_auto_matches_off_on_single_box(self):
        from repro.apps import make_app
        from repro.core.rgp import RGPLASScheduler

        topo = two_socket()
        prog = make_app("jacobi", nt=4, tile=64, sweeps=2).build(
            topo.n_sockets
        )
        results = {}
        for hierarchical in ("auto", False):
            sim = Simulator(
                prog, topo,
                RGPLASScheduler(window_size=8, hierarchical=hierarchical),
                seed=0,
            )
            results[hierarchical] = sim.run()
        a, b = results["auto"], results[False]
        assert a.makespan == b.makespan
        assert [
            (r.tid, r.core, r.start, r.finish) for r in a.records
        ] == [(r.tid, r.core, r.start, r.finish) for r in b.records]

    def test_cluster_auto_resolves_to_hierarchical(self):
        from repro.core.rgp import RGPLASScheduler

        topo = cluster(2)
        sched = RGPLASScheduler(window_size=8, hierarchical="auto")
        prog_sched = make_scheduler("rgp+las", window_size=8)
        assert prog_sched is not sched  # factory builds fresh instances
        from repro.apps import make_app

        prog = make_app("jacobi", nt=4, tile=64, sweeps=2).build(
            topo.n_sockets
        )
        sim = Simulator(prog, topo, sched, seed=0)
        sim.run()
        assert isinstance(sched._active_partitioner, HierarchicalPartitioner)
