"""Two-level (cluster-aware) partitioning: contracts and repair passes.

The hierarchical partitioner cuts across boxes first, then within each
box, with a dominant-edge pre-contraction so producer/consumer chains can
never be split by the network-tier cut (the jacobi double-buffer
pathology: once a tile's init and first sweep land on different boxes,
first-touch binding makes one buffer permanently remote).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.graph import CSRGraph, grid_graph
from repro.machine import cluster, two_socket
from repro.partition import (
    DualRecursiveBipartitioner,
    HierarchicalPartitioner,
    TargetArchitecture,
    edge_cut,
    topology_groups,
)
from repro.partition.hierarchical import _contract_dominant
from repro.runtime import Simulator
from repro.schedulers import make_scheduler


def paired_graph(n_pairs: int = 16, heavy: float = 100.0, light: float = 1.0):
    """``n_pairs`` producer/consumer pairs in a light ring.

    Each pair is joined by an edge that dwarfs everything else incident to
    its endpoints — exactly the structure the contraction must protect.
    """
    edges = []
    for i in range(n_pairs):
        u, v = 2 * i, 2 * i + 1
        edges.append((u, v, heavy))
        w = 2 * ((i + 1) % n_pairs)
        edges.append((v, w, light))
    return CSRGraph.from_edges(2 * n_pairs, edges, np.ones(2 * n_pairs))


@pytest.fixture(scope="module")
def topo4():
    return cluster(2)  # 4 sockets, boxes {0,1} and {2,3}


@pytest.fixture(scope="module")
def target4(topo4):
    return TargetArchitecture.from_topology(topo4)


class TestTopologyGroups:
    def test_cluster_groups_follow_boxes(self):
        assert topology_groups(cluster(3)) == [[0, 1], [2, 3], [4, 5]]

    def test_single_box_groups_are_singletons(self):
        assert topology_groups(two_socket()) == [[0], [1]]


class TestConstructionGuards:
    def test_empty_groups_rejected(self):
        with pytest.raises(PartitionError):
            HierarchicalPartitioner([])
        with pytest.raises(PartitionError):
            HierarchicalPartitioner([[0], []])

    def test_overlapping_groups_rejected(self):
        with pytest.raises(PartitionError):
            HierarchicalPartitioner([[0, 1], [1, 2]])

    def test_gapped_groups_rejected(self):
        with pytest.raises(PartitionError):
            HierarchicalPartitioner([[0], [2]])

    def test_k_must_match_socket_count(self, topo4):
        part = HierarchicalPartitioner.for_topology(topo4)
        g = CSRGraph.from_tdg(grid_graph(8, 8))
        with pytest.raises(PartitionError, match="built for 4 sockets"):
            part.partition(g, 3)


class TestPartitionContract:
    def test_grid_partition_in_range_and_balanced(self, topo4, target4):
        g = CSRGraph.from_tdg(grid_graph(16, 16))
        part = HierarchicalPartitioner.for_topology(topo4, tolerance=0.1)
        res = part.partition(g, 4, target=target4, seed=0)
        assert res.k == 4
        assert len(res) == g.n_vertices
        assert res.parts.min() >= 0 and res.parts.max() < 4
        sizes = np.bincount(res.parts, weights=g.vwgt, minlength=4)
        ideal = g.vwgt.sum() / 4
        # Repair passes keep balance within tolerance plus one vertex.
        assert sizes.max() <= ideal * 1.1 + g.vwgt.max()

    def test_dominant_pairs_stay_in_one_box(self, topo4, target4):
        g = paired_graph()
        part = HierarchicalPartitioner.for_topology(topo4)
        res = part.partition(g, 4, target=target4, seed=0)
        box = res.parts // topo4.sockets_per_box
        for i in range(g.n_vertices // 2):
            assert box[2 * i] == box[2 * i + 1], (
                f"pair {i} split across boxes: sockets "
                f"{res.parts[2 * i]} vs {res.parts[2 * i + 1]}"
            )

    def test_deterministic_per_seed(self, topo4, target4):
        g = CSRGraph.from_tdg(grid_graph(12, 12))
        part = HierarchicalPartitioner.for_topology(topo4)
        a = part.partition(g, 4, target=target4, seed=3)
        b = part.partition(g, 4, target=target4, seed=3)
        assert np.array_equal(a.parts, b.parts)


class TestContractDominant:
    def test_heavy_edge_contracts_light_does_not(self):
        # 0 -10- 1 -1- 2: vertex 0's only edge dominates, so {0,1} merge;
        # vertex 2's only edge dominates too, so everything chains into
        # one cluster when the weight limit allows it.
        g = CSRGraph.from_edges(
            3, [(0, 1, 10.0), (1, 2, 1.0)], np.ones(3)
        )
        cluster_of, coarse = _contract_dominant(g, weight_limit=3.0)
        assert coarse.n_vertices == 1
        assert len(set(cluster_of.tolist())) == 1

    def test_weight_limit_stops_snowballing(self):
        g = CSRGraph.from_edges(
            3, [(0, 1, 10.0), (1, 2, 1.0)], np.ones(3)
        )
        cluster_of, coarse = _contract_dominant(g, weight_limit=2.5)
        assert coarse.n_vertices == 2
        assert cluster_of[0] == cluster_of[1]
        assert cluster_of[2] != cluster_of[0]
        # Contracted weights are the summed originals.
        assert sorted(coarse.vwgt.tolist()) == [1.0, 2.0]

    def test_balanced_edges_do_not_contract(self):
        # Middle vertex sees two equal edges: neither dominates (the
        # dominance test is strict), endpoints each see one dominant edge
        # but capacity-limited unions keep at least two clusters.
        g = CSRGraph.from_edges(
            3, [(0, 1, 5.0), (1, 2, 5.0)], np.ones(3)
        )
        cluster_of, coarse = _contract_dominant(g, weight_limit=2.0)
        assert coarse.n_vertices == 2

    def test_cross_cluster_edges_survive_coalesced(self):
        g = paired_graph(n_pairs=4)
        cluster_of, coarse = _contract_dominant(g, weight_limit=2.0)
        assert coarse.n_vertices == 4  # one cluster per pair
        # Ring of light edges between pairs survives.
        assert coarse.n_edges > 0


class TestSingleBoxEquivalence:
    def test_rgp_hierarchical_auto_matches_off_on_single_box(self):
        from repro.apps import make_app
        from repro.core.rgp import RGPLASScheduler

        topo = two_socket()
        prog = make_app("jacobi", nt=4, tile=64, sweeps=2).build(
            topo.n_sockets
        )
        results = {}
        for hierarchical in ("auto", False):
            sim = Simulator(
                prog, topo,
                RGPLASScheduler(window_size=8, hierarchical=hierarchical),
                seed=0,
            )
            results[hierarchical] = sim.run()
        a, b = results["auto"], results[False]
        assert a.makespan == b.makespan
        assert [
            (r.tid, r.core, r.start, r.finish) for r in a.records
        ] == [(r.tid, r.core, r.start, r.finish) for r in b.records]

    def test_cluster_auto_resolves_to_hierarchical(self):
        from repro.core.rgp import RGPLASScheduler

        topo = cluster(2)
        sched = RGPLASScheduler(window_size=8, hierarchical="auto")
        prog_sched = make_scheduler("rgp+las", window_size=8)
        assert prog_sched is not sched  # factory builds fresh instances
        from repro.apps import make_app

        prog = make_app("jacobi", nt=4, tile=64, sweeps=2).build(
            topo.n_sockets
        )
        sim = Simulator(prog, topo, sched, seed=0)
        sim.run()
        assert isinstance(sched._active_partitioner, HierarchicalPartitioner)


# ---------------------------------------------------------------------------
# Property tests: random cluster shapes and random graphs (hypothesis).
# ---------------------------------------------------------------------------


@st.composite
def shaped_instances(draw, max_boxes=3, max_sockets_per_box=3, max_edges=48):
    """A random cluster shape plus a graph big enough to partition on it."""
    n_boxes = draw(st.integers(min_value=2, max_value=max_boxes))
    spb = draw(st.integers(min_value=1, max_value=max_sockets_per_box))
    k = n_boxes * spb
    n = draw(st.integers(min_value=k, max_value=24))
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(n_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        w = draw(st.floats(min_value=0.1, max_value=50.0,
                           allow_nan=False, allow_infinity=False))
        edges.append((u, v, w))
    vwgt = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.1, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n,
            )
        )
    )
    return CSRGraph.from_edges(n, edges, vwgt), n_boxes, spb


class TestShapeProperties:
    @given(shaped_instances(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_composition_is_valid_full_k_partition(self, instance, seed):
        """Box-level cut + per-box inner cuts compose: the result is a
        total, in-range k-way partition whose edge cut decomposes exactly
        into the cross-box cut plus each box's internal cross-socket cut."""
        graph, n_boxes, spb = instance
        topo = cluster(n_boxes, sockets_per_box=spb)
        k = topo.n_sockets
        target = TargetArchitecture.from_topology(topo)
        part = HierarchicalPartitioner.for_topology(topo, tolerance=0.1)
        res = part.partition(graph, k, target=target, seed=seed)

        assert len(res.parts) == graph.n_vertices
        assert res.parts.min() >= 0 and res.parts.max() < k

        box_parts = res.parts // spb
        assert box_parts.max() < n_boxes
        inner_cut = 0.0
        for b in range(n_boxes):
            members = np.flatnonzero(box_parts == b)
            if len(members) == 0:
                continue
            sub, old_ids = graph.induced_subgraph(members)
            inner_cut += edge_cut(sub, res.parts[old_ids] - b * spb)
        np.testing.assert_allclose(
            edge_cut(graph, res.parts),
            edge_cut(graph, box_parts) + inner_cut,
            rtol=1e-9, atol=1e-9,
        )

    @given(shaped_instances(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_under_random_shapes(self, instance, seed):
        graph, n_boxes, spb = instance
        topo = cluster(n_boxes, sockets_per_box=spb)
        target = TargetArchitecture.from_topology(topo)
        part = HierarchicalPartitioner.for_topology(topo, tolerance=0.1)
        a = part.partition(graph, topo.n_sockets, target=target, seed=seed)
        b = part.partition(graph, topo.n_sockets, target=target, seed=seed)
        assert np.array_equal(a.parts, b.parts)

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_topology_groups_are_box_major_ranges(self, n_boxes, spb):
        groups = topology_groups(cluster(n_boxes, sockets_per_box=spb))
        if n_boxes > 1:
            assert groups == [
                list(range(b * spb, (b + 1) * spb)) for b in range(n_boxes)
            ]
        else:
            assert groups == [[s] for s in range(spb)]


class TestAutoSingleBoxProperty:
    """``hierarchical="auto"`` on a single box must be the flat partitioner
    itself — partitions bit-identical to hierarchical=False for any graph."""

    _cache: dict = {}

    @classmethod
    def _resolved(cls):
        # Resolve "auto" through the real code path once: attach to a
        # single-box machine and let on_program_start pick the partitioner.
        if "active" not in cls._cache:
            from repro.apps import make_app
            from repro.core.rgp import RGPLASScheduler

            topo = two_socket()
            sched = RGPLASScheduler(window_size=8, hierarchical="auto")
            prog = make_app("jacobi", nt=4, tile=64, sweeps=2).build(
                topo.n_sockets
            )
            Simulator(prog, topo, sched, seed=0).run()
            cls._cache["active"] = sched._active_partitioner
        return cls._cache["active"]

    def test_resolves_to_flat(self):
        active = self._resolved()
        assert not isinstance(active, HierarchicalPartitioner)
        assert isinstance(active, DualRecursiveBipartitioner)

    @given(shaped_instances(max_boxes=2, max_sockets_per_box=1),
           st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_to_flat_on_hypothesis_graphs(self, instance, seed):
        graph, _, _ = instance
        active = self._resolved()
        flat = DualRecursiveBipartitioner()
        a = active.partition(graph, 2, seed=seed)
        b = flat.partition(graph, 2, seed=seed)
        assert np.array_equal(a.parts, b.parts)
