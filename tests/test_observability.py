"""Unit tests for the observability subsystem (events, metrics, export)."""

import json

import numpy as np
import pytest

from repro.machine import two_socket
from repro.observability import (
    NULL_SINK,
    TAXONOMY,
    Counter,
    Event,
    Gauge,
    Histogram,
    Instrumentation,
    MetricsRegistry,
    NullSink,
    RingBufferSink,
    chrome_trace,
    metrics_document,
    paraver_timeline,
    validate_events,
    write_chrome_trace,
    write_metrics_json,
    write_paraver,
)
from repro.runtime import simulate
from repro.schedulers import make_scheduler

from conftest import make_fan_program


def instrumented_run(policy="rgp+las", seed=0, **sched_kwargs):
    obs = Instrumentation()
    topo = two_socket(cores_per_socket=2)
    result = simulate(
        make_fan_program(), topo,
        make_scheduler(policy, **sched_kwargs), seed=seed, instrument=obs,
    )
    return result, obs, topo


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_ring_buffer_keeps_order_and_drops_oldest(self):
        sink = RingBufferSink(capacity=4)
        for i in range(6):
            sink.emit(Event(ts=float(i), kind="task.start", args={"i": i}))
        assert sink.total == 6
        assert sink.dropped == 2
        assert [e.args["i"] for e in sink.events] == [2, 3, 4, 5]

    def test_null_sink_is_disabled_noop(self):
        assert not NULL_SINK.enabled
        NULL_SINK.emit(Event(ts=0.0, kind="task.start", args={}))  # no-op
        assert isinstance(NULL_SINK, NullSink)

    def test_instrumentation_skips_event_construction_on_null_sink(self):
        obs = Instrumentation(sink=NULL_SINK)
        obs.emit(0.0, "task.start", tid=0)
        assert obs.events == []
        assert not obs.events_enabled

    def test_validate_events_flags_unknown_kind_and_time_travel(self):
        bad = [
            Event(ts=1.0, kind="no.such.kind", args={}),
            Event(ts=0.5, kind="task.start", args={}),
        ]
        problems = validate_events(bad)
        assert problems

    def test_every_emitted_kind_is_in_taxonomy(self):
        result, _, _ = instrumented_run()
        assert result.events
        for ev in result.events:
            assert ev.kind in TAXONOMY

    def test_event_stream_is_time_ordered(self):
        result, _, _ = instrumented_run()
        assert validate_events(result.events) == []


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_collapses_same_timestamp(self):
        g = Gauge("x")
        g.set(1.0, 10.0)
        g.set(1.0, 20.0)
        g.set(2.0, 30.0)
        assert g.samples == [(1.0, 20.0), (2.0, 30.0)]
        assert g.value == 30.0

    def test_histogram_buckets_and_quantiles(self):
        h = Histogram("x", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts.tolist() == [1, 1, 1]
        assert h.count == 3
        assert h.mean == pytest.approx((0.5 + 5.0 + 50.0) / 3)

    def test_registry_lazy_and_snapshot_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(1.0, 3.0)
        reg.histogram("c").observe(0.2)
        reg.matrix("m", (2, 2))[0, 1] += 5.0
        snap = reg.snapshot()
        json.dumps(snap)  # must be JSON-serialisable as-is
        assert snap["counters"]["a"] == 2
        assert snap["matrices"]["m"][0][1] == 5.0

    def test_histogram_bounds_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1.0, 3.0))


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------
class TestSimulatorIntegration:
    def test_result_carries_events_and_metrics(self):
        result, obs, _ = instrumented_run()
        assert result.events is obs.events or result.events == obs.events
        assert result.metrics is not None
        counters = result.metrics["counters"]
        assert counters["tasks.completed"] == result.n_tasks

    def test_traffic_matrix_matches_byte_split(self):
        """Acceptance: rows of the NUMA traffic matrix (minus the
        diagonal) sum to each socket's remote bytes; the diagonal sums
        to the run's local bytes."""
        result, _, topo = instrumented_run()
        m = np.asarray(result.metrics["matrices"]["numa.traffic"])
        assert m.shape == (topo.n_sockets, topo.n_nodes)
        assert np.trace(m) == pytest.approx(result.local_bytes)
        assert m.sum() - np.trace(m) == pytest.approx(result.remote_bytes)
        np.testing.assert_allclose(m, result.bytes_by_pair)

    def test_byte_counters_match_result_aggregates(self):
        result, _, _ = instrumented_run()
        counters = result.metrics["counters"]
        assert counters.get("bytes.local", 0.0) == pytest.approx(
            result.local_bytes
        )
        assert counters.get("bytes.remote", 0.0) == pytest.approx(
            result.remote_bytes
        )

    def test_task_lifecycle_events_pair_up(self):
        result, _, _ = instrumented_run()
        starts = [e for e in result.events if e.kind == "task.start"]
        finishes = [e for e in result.events if e.kind == "task.finish"]
        assert len(starts) == len(finishes) == result.n_tasks
        assert {e.args["tid"] for e in starts} == set(range(result.n_tasks))

    def test_rgp_partition_events_present(self):
        result, _, _ = instrumented_run("rgp+las", window_size=8)
        kinds = {e.kind for e in result.events}
        assert "rgp.window" in kinds
        assert "rgp.partition.begin" in kinds
        assert "rgp.partition.end" in kinds
        assert "partition.coarsen" in kinds or "partition.initial" in kinds
        end = next(e for e in result.events if e.kind == "rgp.partition.end")
        assert end.args["edge_cut"] is not None
        # host_us is real wall clock: range and finiteness only, never an
        # exact value — anything tighter couples the suite to host speed.
        import math

        assert end.args["host_us"] >= 0.0
        assert math.isfinite(end.args["host_us"])

    def test_las_choice_events_carry_evidence(self):
        result, _, topo = instrumented_run("las")
        choices = [e for e in result.events if e.kind == "sched.choice"]
        assert len(choices) == result.n_tasks
        for ev in choices:
            assert ev.args["branch"] in ("random", "weighted", "tie", "first")
            assert len(ev.args["weights"]) == topo.n_sockets

    def test_null_sink_still_collects_metrics(self):
        obs = Instrumentation(sink=NULL_SINK)
        topo = two_socket(cores_per_socket=2)
        result = simulate(
            make_fan_program(), topo, make_scheduler("las"),
            seed=0, instrument=obs,
        )
        assert result.events == []
        assert result.metrics is not None
        assert result.metrics["counters"]["tasks.completed"] == result.n_tasks


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_golden_small_trace_valid_and_monotonic(self, tmp_path):
        """Golden-file acceptance: a small exported trace is valid JSON
        and every (pid, tid) track's ``ts`` is monotonically
        non-decreasing."""
        result, _, _ = instrumented_run()
        path = tmp_path / "trace.json"
        write_chrome_trace(result, path)
        doc = json.loads(path.read_text())  # valid JSON
        events = doc["traceEvents"]
        assert events
        per_track: dict = {}
        for ev in events:
            if "ts" not in ev:
                continue  # metadata records carry no timestamp
            key = (ev["pid"], ev.get("tid"))
            last = per_track.get(key)
            assert last is None or ev["ts"] >= last, key
            per_track[key] = ev["ts"]

    def test_slices_cover_every_task(self):
        result, _, _ = instrumented_run()
        doc = chrome_trace(result)
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(slices) == result.n_tasks

    def test_counter_tracks_reproduce_byte_split(self):
        """Acceptance: the final value of the bytes.local / bytes.remote
        counter tracks equals the run's byte split."""
        result, _, _ = instrumented_run()
        doc = chrome_trace(result)
        finals = {}
        for ev in doc["traceEvents"]:
            if ev.get("ph") == "C":
                finals[ev["name"]] = ev["args"]["value"]
        assert finals["bytes.local"] == pytest.approx(result.local_bytes)
        assert finals["bytes.remote"] == pytest.approx(result.remote_bytes)

    def test_metadata_names_sockets_and_cores(self):
        result, _, topo = instrumented_run()
        doc = chrome_trace(result)
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev.get("ph") == "M" and ev["name"] == "process_name"
        }
        for s in range(topo.n_sockets):
            assert f"socket {s}" in names
        assert "metrics" in names

    def test_export_is_deterministic(self):
        r1, _, _ = instrumented_run()
        r2, _, _ = instrumented_run()
        d1, d2 = chrome_trace(r1), chrome_trace(r2)
        # Partitioner phase payloads carry host-clock durations; strip
        # them before comparing (everything else must be identical).
        def strip(doc):
            out = []
            for ev in doc["traceEvents"]:
                ev = dict(ev)
                args = dict(ev.get("args", {}))
                args.pop("host_us", None)
                ev["args"] = args
                out.append(ev)
            return out
        assert strip(d1) == strip(d2)


class TestParaverAndMetricsExport:
    def test_paraver_header_and_records(self, tmp_path):
        result, _, _ = instrumented_run()
        path = tmp_path / "trace.prv"
        write_paraver(result, path)
        text = path.read_text()
        lines = text.splitlines()
        assert lines[0].startswith("#Paraver (01/01/2018 at 00:00):")
        states = [ln for ln in lines if ln.startswith("1:")]
        assert len(states) == result.n_tasks
        # State records are colon-separated with 8 fields.
        assert all(len(ln.split(":")) == 8 for ln in states)

    def test_paraver_deterministic(self):
        r1, _, _ = instrumented_run()
        r2, _, _ = instrumented_run()
        assert paraver_timeline(r1) == paraver_timeline(r2)

    def test_metrics_json_document(self, tmp_path):
        result, _, _ = instrumented_run()
        path = tmp_path / "metrics.json"
        write_metrics_json(result, path)
        doc = json.loads(path.read_text())
        assert doc["makespan"] == result.makespan
        assert doc["registry"]["counters"]["tasks.completed"] == result.n_tasks

    def test_exporters_work_without_instrumentation(self):
        """Exporters degrade gracefully on an uninstrumented result."""
        topo = two_socket(cores_per_socket=2)
        result = simulate(
            make_fan_program(), topo, make_scheduler("las"), seed=0
        )
        doc = chrome_trace(result)
        assert [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert paraver_timeline(result)
        assert metrics_document(result)["registry"] == {}


# ----------------------------------------------------------------------
# Figure-1 pair acceptance: LAS vs RGP+LAS byte split in the trace
# ----------------------------------------------------------------------
class TestFigurePairAcceptance:
    def test_las_vs_rgp_las_counter_tracks_match_byte_split(self):
        """The headline comparison: for both policies of the paper's
        figure, the exported counter tracks must reproduce each run's
        local/remote byte split, and the traffic-matrix row sums must
        equal each socket's total bytes."""
        for policy in ("las", "rgp+las"):
            result, _, topo = instrumented_run(policy, seed=1)
            doc = chrome_trace(result)
            finals = {
                ev["name"]: ev["args"]["value"]
                for ev in doc["traceEvents"]
                if ev.get("ph") == "C"
            }
            assert finals["bytes.local"] == pytest.approx(result.local_bytes)
            assert finals["bytes.remote"] == pytest.approx(
                result.remote_bytes
            )
            m = np.asarray(result.metrics["matrices"]["numa.traffic"])
            for s in range(topo.n_sockets):
                remote_s = m[s].sum() - m[s, s]
                assert remote_s == pytest.approx(
                    result.bytes_by_pair[s].sum() - result.bytes_by_pair[s, s]
                )
