"""Unit tests for the CSR graph used by the partitioners."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph, TaskGraph, chain


class TestFromEdges:
    def test_basic_triangle(self):
        g = CSRGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        assert g.n_vertices == 3
        assert g.n_edges == 3
        assert g.degree(0) == 2
        assert set(g.neighbors(1)) == {0, 2}

    def test_duplicate_edges_merge(self):
        g = CSRGraph.from_edges(2, [(0, 1, 1.0), (1, 0, 2.0), (0, 1, 3.0)])
        assert g.n_edges == 1
        assert g.neighbor_weights(0)[0] == 6.0

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(2, [(0, 0, 5.0), (0, 1, 1.0)])
        assert g.n_edges == 1

    def test_each_edge_twice_in_adjacency(self):
        g = CSRGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert len(g.adjncy) == 4

    def test_default_unit_vertex_weights(self):
        g = CSRGraph.from_edges(3, [(0, 1, 1.0)])
        assert list(g.vwgt) == [1.0, 1.0, 1.0]
        assert g.total_vertex_weight == 3.0

    def test_out_of_range_edge(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 5, 1.0)])

    def test_isolated_vertices_ok(self):
        g = CSRGraph.from_edges(4, [(0, 1, 1.0)])
        assert g.degree(3) == 0


class TestFromTDG:
    def test_symmetrisation(self):
        tdg = TaskGraph()
        a = tdg.add_node(2.0)
        b = tdg.add_node(3.0)
        tdg.add_edge(a, b, 7.0)
        g = CSRGraph.from_tdg(tdg)
        assert g.n_edges == 1
        assert list(g.vwgt) == [2.0, 3.0]
        assert g.neighbor_weights(0)[0] == 7.0
        assert g.neighbor_weights(1)[0] == 7.0

    def test_chain_structure(self):
        g = CSRGraph.from_tdg(chain(5))
        assert g.n_vertices == 5
        assert g.n_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_empty_graph(self):
        g = CSRGraph.from_tdg(TaskGraph())
        assert g.n_vertices == 0
        assert g.n_edges == 0


class TestValidation:
    def test_bad_xadj_start(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0]), np.array([1.0]),
                     np.array([1.0]))

    def test_xadj_decreasing(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([1, 0]),
                     np.array([1.0, 1.0]), np.array([1.0, 1.0]))

    def test_adjacency_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5]), np.array([1.0]),
                     np.array([1.0]))

    def test_mismatched_weights(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1, 2]), np.array([1, 0]),
                     np.array([1.0]), np.array([1.0, 1.0]))

    def test_negative_weights(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1, 2]), np.array([1, 0]),
                     np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
