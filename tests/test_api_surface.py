"""API surface tests: the documented top-level interface stays stable."""

import importlib
import inspect

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_names_present(self):
        # The names the README quickstart uses.
        for name in ("bullion_s16", "make_app", "make_scheduler", "simulate",
                     "TaskProgram", "execute_in_order"):
            assert hasattr(repro, name)

    def test_registries_consistent(self):
        assert set(repro.APPS) >= {
            "cg", "gauss-seidel", "histogram", "jacobi", "nstream", "qr",
            "redblack", "symminv",
        }
        assert set(repro.SCHEDULERS) >= {"dfifo", "las", "ep", "rgp+las"}
        assert set(repro.PARTITIONERS) >= {"drb", "multilevel", "spectral"}


class TestSubpackagesImportable:
    @pytest.mark.parametrize("module", [
        "repro.machine", "repro.graph", "repro.partition", "repro.runtime",
        "repro.schedulers", "repro.core", "repro.apps", "repro.metrics",
        "repro.experiments", "repro.cli", "repro.errors",
    ])
    def test_importable(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize("module", [
        "repro.machine", "repro.graph", "repro.partition", "repro.runtime",
        "repro.schedulers", "repro.core", "repro.apps", "repro.metrics",
        "repro.experiments",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__")
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"


class TestDocstrings:
    @pytest.mark.parametrize("obj_name", [
        "Simulator", "TaskProgram", "NumaTopology", "MemoryManager",
        "Interconnect", "RGPScheduler", "RGPLASScheduler", "LASScheduler",
        "DFIFOScheduler", "EPScheduler", "DualRecursiveBipartitioner",
        "MultilevelKWay", "SpectralPartitioner", "TargetArchitecture",
        "SimulationResult", "Task", "DataObject", "AccessMode",
    ])
    def test_public_classes_documented(self, obj_name):
        obj = getattr(repro, obj_name)
        assert inspect.getdoc(obj), f"{obj_name} lacks a docstring"

    def test_all_app_classes_documented(self):
        for name, cls in repro.APPS.items():
            assert inspect.getdoc(cls), name
            assert inspect.getdoc(cls.build), f"{name}.build"

    def test_scheduler_choose_documented(self):
        assert inspect.getdoc(repro.Scheduler.choose)
