"""Simulator-side fault injection and recovery (repro.faults + Simulator).

Covers the DESIGN.md §7 mechanisms: zero-overhead when faults are off,
core quarantine with queue draining, transient recovery, placement
remapping onto surviving sockets, stragglers, bandwidth degradation,
probabilistic task crashes, retry limits, and backoff.
"""

import pytest

from repro.errors import FaultError, SimulationError
from repro.faults import (
    CoreFault,
    CoreSlowdown,
    FaultPlan,
    NodeDegradation,
    TaskCrash,
)
from repro.machine import two_socket
from repro.runtime import Simulator, TaskProgram, simulate
from repro.runtime.validation import validate_schedule
from repro.schedulers import make_scheduler

from conftest import make_fan_program


def chains_program(n_chains=4, length=4, nbytes=65536):
    p = TaskProgram("chains")
    for c in range(n_chains):
        a = p.data(f"a{c}", nbytes)
        p.task(f"init{c}", outs=[a], work=0.5)
        for i in range(length):
            p.task(f"t{c}_{i}", inouts=[a], work=0.5)
    return p.finalize()


def run(prog, topo, policy="las", faults=None, seed=0, **kw):
    sched = make_scheduler(policy)
    sim = Simulator(prog, topo, sched, seed=seed, faults=faults, **kw)
    return sim.run()


class TestZeroOverhead:
    @pytest.mark.parametrize("policy", ["las", "rgp+las", "dfifo"])
    def test_empty_plan_is_byte_identical(self, topo2, policy):
        """Acceptance gate: an empty FaultPlan must not perturb anything."""
        prog = chains_program()
        base = run(prog, topo2, policy)
        faulted = run(prog, topo2, policy, faults=FaultPlan())
        assert base.makespan == faulted.makespan
        assert len(base.records) == len(faulted.records)
        for a, b in zip(base.records, faulted.records):
            assert (a.tid, a.core, a.start, a.finish) == (
                b.tid,
                b.core,
                b.start,
                b.finish,
            )

    def test_empty_plan_disables_machinery(self, topo2, chain_program):
        sim = Simulator(
            chain_program, topo2, make_scheduler("las"), faults=FaultPlan()
        )
        assert sim.faults is None
        assert sim._injector is None

    def test_fault_free_result_reports_zero(self, topo2, chain_program):
        res = run(chain_program, topo2)
        assert res.reexecutions == 0
        assert res.wasted_work == 0.0
        assert res.cores_failed == 0
        assert res.faults_injected == 0
        assert res.crashed_records == []


class TestCoreFailure:
    def test_permanent_failure_still_completes(self, topo2):
        prog = chains_program()
        plan = FaultPlan(core_faults=(CoreFault(core=0, at=0.2),))
        res = run(prog, topo2, faults=plan, max_retries=10)
        assert res.n_tasks == prog.n_tasks
        assert res.cores_failed == 1
        validate_schedule(prog, res, topo2)
        # The dead core never runs anything after the failure time.
        assert all(
            r.start < 0.2 for r in res.records + res.crashed_records
            if r.core == 0
        )

    def test_running_victim_is_reexecuted(self, topo2):
        prog = chains_program()
        plan = FaultPlan(core_faults=(CoreFault(core=0, at=0.2),))
        res = run(prog, topo2, faults=plan, max_retries=10)
        assert res.reexecutions >= 1
        assert res.wasted_work > 0
        victims = [r for r in res.crashed_records if r.outcome == "core-failure"]
        assert len(victims) == 1
        # The victim completed later on a surviving core.
        final = next(r for r in res.records if r.tid == victims[0].tid)
        assert final.start >= victims[0].finish
        assert final.attempt == 1

    def test_socket_wipe_remaps_to_survivor(self, topo2):
        prog = chains_program()
        plan = FaultPlan(
            core_faults=(CoreFault(core=0, at=0.2), CoreFault(core=1, at=0.2))
        )
        res = run(prog, topo2, faults=plan, max_retries=10)
        validate_schedule(prog, res, topo2)
        # Everything after the wipe runs on socket 1 even though LAS keeps
        # proposing socket 0 for data bound there.
        assert all(r.socket == 1 for r in res.records if r.start >= 0.2)

    def test_transient_failure_recovers(self, topo2):
        prog = chains_program(n_chains=4, length=8)
        plan = FaultPlan(core_faults=(CoreFault(core=0, at=0.2, duration=1.0),))
        res = run(prog, topo2, faults=plan, max_retries=10)
        validate_schedule(prog, res, topo2)
        # The core comes back at t=1.2 and runs tasks again.
        assert any(r.core == 0 and r.start >= 1.2 for r in res.records)

    def test_degradation_never_speeds_up(self, topo2):
        prog = chains_program()
        plan = FaultPlan(core_faults=(CoreFault(core=0, at=0.2),))
        base = run(prog, topo2)
        res = run(prog, topo2, faults=plan, max_retries=10)
        assert res.makespan >= base.makespan

    def test_fail_core_out_of_range(self, topo2, chain_program):
        sim = Simulator(chain_program, topo2, make_scheduler("las"))
        with pytest.raises(FaultError, match="out of range"):
            sim.fail_core(99)

    def test_double_failure_is_idempotent(self, topo2, chain_program):
        sim = Simulator(chain_program, topo2, make_scheduler("las"))
        sim.fail_core(0)
        sim.fail_core(0)
        assert sim.cores_failed == 1


class TestStragglersAndBandwidth:
    def test_slowdown_stretches_makespan(self, topo2):
        prog = chains_program()
        slow = FaultPlan(
            slowdowns=tuple(
                CoreSlowdown(core=c, at=0.0, factor=8.0) for c in range(4)
            )
        )
        base = run(prog, topo2)
        res = run(prog, topo2, faults=slow)
        validate_schedule(prog, res, topo2)
        assert res.makespan > base.makespan * 2

    def test_node_degradation_stretches_makespan(self, topo2):
        prog = make_fan_program(width=8, obj_bytes=1 << 22)
        plan = FaultPlan(
            node_degradations=tuple(
                NodeDegradation(node=n, at=0.0, factor=0.1) for n in range(2)
            )
        )
        base = run(prog, topo2)
        res = run(prog, topo2, faults=plan)
        validate_schedule(prog, res, topo2)
        assert res.makespan > base.makespan

    def test_set_core_speed_validation(self, topo2, chain_program):
        sim = Simulator(chain_program, topo2, make_scheduler("las"))
        with pytest.raises(FaultError):
            sim.set_core_speed(0, 0.0)
        with pytest.raises(FaultError):
            sim.set_core_speed(99, 0.5)

    def test_set_node_bandwidth_validation(self, topo2, chain_program):
        sim = Simulator(chain_program, topo2, make_scheduler("las"))
        with pytest.raises(FaultError):
            sim.set_node_bandwidth_factor(0, 1.5)
        with pytest.raises(FaultError):
            sim.set_node_bandwidth_factor(99, 0.5)


class TestTaskCrashes:
    def test_crash_cap_limits_injections(self, topo2):
        prog = chains_program()
        plan = FaultPlan(
            task_crashes=(TaskCrash(probability=1.0, max_crashes=2),)
        )
        res = run(prog, topo2, faults=plan, max_retries=10)
        assert res.reexecutions == 2
        assert res.faults_injected == 2
        validate_schedule(prog, res, topo2)

    def test_match_restricts_crashes(self, topo2):
        prog = chains_program()
        plan = FaultPlan(
            task_crashes=(
                TaskCrash(probability=1.0, match="init", max_crashes=3),
            )
        )
        res = run(prog, topo2, faults=plan, max_retries=10)
        assert res.reexecutions > 0
        assert all("init" in r.name for r in res.crashed_records)

    def test_retry_limit_exhaustion_raises(self, topo2):
        prog = chains_program()
        plan = FaultPlan(task_crashes=(TaskCrash(probability=1.0),))
        with pytest.raises(FaultError, match="retry limit"):
            run(prog, topo2, faults=plan, max_retries=2)

    def test_backoff_delays_reexecution(self, topo2):
        prog = chains_program(n_chains=1, length=1)
        plan = FaultPlan(
            task_crashes=(TaskCrash(probability=1.0, max_crashes=1),)
        )
        eager = run(prog, topo2, faults=plan, max_retries=5)
        patient = run(
            prog, topo2, faults=plan, max_retries=5, retry_backoff=3.0
        )
        assert patient.makespan >= eager.makespan + 3.0

    def test_crashes_are_seed_deterministic(self, topo2):
        prog = chains_program()
        plan = FaultPlan(task_crashes=(TaskCrash(probability=0.3),))
        a = run(prog, topo2, faults=plan, max_retries=20, seed=7)
        b = run(prog, topo2, faults=plan, max_retries=20, seed=7)
        assert a.makespan == b.makespan
        assert [r.tid for r in a.crashed_records] == [
            r.tid for r in b.crashed_records
        ]

    def test_crash_timer_fizzles_after_finish(self, topo2, chain_program):
        """A crash aimed at an attempt that already finished must not hit
        the re-executed (or any later) attempt."""
        sim = Simulator(chain_program, topo2, make_scheduler("las"))
        sim.crash_if_running((0, 0.0))  # nothing running: no-op
        res = sim.run()
        assert res.reexecutions == 0


class TestGuardRails:
    def test_negative_max_retries_rejected(self, topo2, chain_program):
        with pytest.raises(SimulationError, match="max_retries"):
            Simulator(chain_program, topo2, make_scheduler("las"), max_retries=-1)

    def test_negative_backoff_rejected(self, topo2, chain_program):
        with pytest.raises(SimulationError, match="retry_backoff"):
            Simulator(
                chain_program, topo2, make_scheduler("las"), retry_backoff=-1.0
            )

    def test_bad_wall_clock_limit_rejected(self, topo2, chain_program):
        with pytest.raises(SimulationError, match="wall_clock_limit"):
            Simulator(
                chain_program, topo2, make_scheduler("las"), wall_clock_limit=0.0
            )

    def test_wall_clock_limit_enforced(self, topo2):
        prog = chains_program(n_chains=8, length=8)
        sim = Simulator(
            prog, topo2, make_scheduler("las"), wall_clock_limit=1e-9
        )
        with pytest.raises(SimulationError, match="wall-clock limit"):
            sim.run()

    def test_plan_validated_against_topology(self, topo2, chain_program):
        plan = FaultPlan(core_faults=(CoreFault(core=64, at=0.0),))
        with pytest.raises(FaultError, match="out of range"):
            Simulator(chain_program, topo2, make_scheduler("las"), faults=plan)

    def test_total_core_loss_raises_fault_error(self, topo2):
        """Killing every core mid-run (legal per-plan: staggered transients
        that overlap in practice) surfaces as FaultError, not a silent hang."""
        prog = chains_program(n_chains=8, length=8)
        plan = FaultPlan(
            core_faults=tuple(
                CoreFault(core=c, at=0.5, duration=1000.0) for c in range(4)
            )
        )
        with pytest.raises(FaultError, match="no surviving cores"):
            run(prog, topo2, faults=plan, max_retries=100)


class TestValidationOfFaultedRuns:
    def test_faulted_run_passes_extended_validation(self, topo2):
        prog = chains_program()
        plan = FaultPlan(
            core_faults=(CoreFault(core=1, at=0.3),),
            task_crashes=(TaskCrash(probability=0.2),),
        )
        res = run(prog, topo2, faults=plan, max_retries=20)
        validate_schedule(prog, res, topo2)

    def test_forged_crash_record_detected(self, topo2):
        from dataclasses import replace

        prog = chains_program()
        plan = FaultPlan(
            task_crashes=(TaskCrash(probability=1.0, max_crashes=1),)
        )
        res = run(prog, topo2, faults=plan, max_retries=5)
        assert res.crashed_records
        res.crashed_records[0] = replace(res.crashed_records[0], outcome="ok")
        with pytest.raises(SimulationError, match="outcome 'ok'"):
            validate_schedule(prog, res, topo2)

    def test_attempt_count_mismatch_detected(self, topo2):
        prog = chains_program()
        plan = FaultPlan(
            task_crashes=(TaskCrash(probability=1.0, max_crashes=1),)
        )
        res = run(prog, topo2, faults=plan, max_retries=5)
        res.crashed_records.append(res.crashed_records[0])
        with pytest.raises(SimulationError):
            validate_schedule(prog, res, topo2)
