"""Unit tests for TaskProgram construction and queries."""

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import AccessMode, DataAccess, TaskProgram


class TestConstruction:
    def test_task_ids_dense(self):
        p = TaskProgram()
        a = p.data("a", 10)
        t0 = p.task(outs=[a])
        t1 = p.task(ins=[a])
        assert (t0.tid, t1.tid) == (0, 1)
        assert p.n_tasks == 2

    def test_default_names(self):
        p = TaskProgram()
        t = p.task()
        assert t.name == "task0"

    def test_object_keys_dense(self):
        p = TaskProgram()
        assert p.data("a", 1).key == 0
        assert p.data("b", 1).key == 1
        assert p.n_objects == 2

    def test_explicit_access_mode_must_match_list(self):
        p = TaskProgram()
        a = p.data("a", 10)
        acc = DataAccess(a, AccessMode.OUT)
        with pytest.raises(RuntimeStateError):
            p.task(ins=[acc])

    def test_finalize_blocks_changes(self):
        p = TaskProgram().finalize()
        with pytest.raises(RuntimeStateError):
            p.data("a", 1)
        with pytest.raises(RuntimeStateError):
            p.task()
        with pytest.raises(RuntimeStateError):
            p.barrier()

    def test_meta_and_work(self):
        p = TaskProgram()
        t = p.task(work=2.5, meta={"ep_socket": 3})
        assert t.work == 2.5
        assert t.meta["ep_socket"] == 3


class TestBarriers:
    def test_epochs(self):
        p = TaskProgram()
        p.task()
        p.barrier()
        p.task()
        p.task()
        p.barrier()
        p.task()
        assert p.n_epochs == 3
        assert [t.epoch for t in p.tasks] == [0, 1, 1, 2]
        assert p.epoch_task_counts() == [1, 2, 1]

    def test_consecutive_barriers_collapse(self):
        p = TaskProgram()
        p.task()
        p.barrier()
        p.barrier()
        assert p.n_epochs == 2
        assert p.barriers == [1]

    def test_first_partition_point_window(self):
        p = TaskProgram()
        for _ in range(10):
            p.task()
        assert p.first_partition_point(4) == 4

    def test_first_partition_point_barrier(self):
        p = TaskProgram()
        for _ in range(3):
            p.task()
        p.barrier()
        for _ in range(5):
            p.task()
        assert p.first_partition_point(100) == 3
        assert p.first_partition_point(2) == 2

    def test_first_partition_point_small_program(self):
        p = TaskProgram()
        p.task()
        assert p.first_partition_point(100) == 1

    def test_bad_window(self):
        with pytest.raises(RuntimeStateError):
            TaskProgram().first_partition_point(0)


class TestQueries:
    def test_totals(self):
        p = TaskProgram()
        a = p.data("a", 100)
        p.task(outs=[a], work=1.0)
        p.task(inouts=[a], work=2.0)
        assert p.total_work() == 3.0
        assert p.total_traffic_bytes() == 100 + 200

    def test_validate_ok(self):
        p = TaskProgram()
        a = p.data("a", 10)
        p.task(outs=[a])
        p.task(ins=[a])
        p.validate()

    def test_repr(self):
        p = TaskProgram("myprog")
        assert "myprog" in repr(p)
