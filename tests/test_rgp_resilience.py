"""RGP graceful degradation: partition park/re-offer, timeouts, core loss.

Satellite coverage for the ``partition_delay`` park path
(``_on_partition_done`` → ``sim.reoffer(parked)``) and the DESIGN.md §7
fallback when the partition result never arrives.
"""

import pytest

from repro.core.rgp import RGPLASScheduler
from repro.errors import PartitionTimeoutError, SchedulerError
from repro.faults import CoreFault, FaultPlan
from repro.machine import two_socket
from repro.runtime import Simulator, TaskProgram, simulate
from repro.runtime.validation import validate_schedule


def chains_program(n_chains=8, length=4, nbytes=65536):
    p = TaskProgram("chains")
    for c in range(n_chains):
        a = p.data(f"a{c}", nbytes)
        p.task(f"init{c}", outs=[a], work=0.5)
        for i in range(length):
            p.task(f"t{c}_{i}", inouts=[a], work=0.5)
    return p.finalize()


class TestPartitionDelayParking:
    def test_ready_tasks_park_until_partition_done(self, topo8):
        """Window tasks ready at t=0 wait in the temporary queue; the
        partition-done timer re-offers every one of them."""
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=2.0, partition_seed=1
        )
        sim = Simulator(p, topo8, sched, seed=0)
        res = sim.run()
        # All roots were ready before the partition and had to park.
        assert res.parked_tasks == 8
        # The re-offer drained the temporary queue completely.
        assert sim.parked == []
        assert res.n_tasks == p.n_tasks
        # Nothing ran before the partition arrived, and window placements
        # were used once it did.
        assert min(r.start for r in res.records) >= 2.0
        assert sched.audit["window"] == p.n_tasks

    def test_task_ready_before_partition_still_runs(self, topo8):
        """A task that becomes ready while the partition is pending must be
        handled, not lost: window tasks park and wait, tasks beyond the
        window propagate and run straight through the delay."""
        p = TaskProgram("mid")
        a = p.data("a", 65536)
        p.task("wroot", outs=[a], work=0.5)
        p.task("wchild", inouts=[a], work=0.5)
        p.task("wtail", inouts=[a], work=0.5)
        b = p.data("b", 65536)
        p.task("proot", outs=[b], work=0.5)
        p.task("pchild", inouts=[b], work=0.5)
        p.task("ptail", inouts=[b], work=0.5)
        prog = p.finalize()
        # Window = the first chain only; the second chain is propagated.
        sched = RGPLASScheduler(
            window_size=3, partition_delay=30.0, partition_seed=1
        )
        res = simulate(prog, topo8, sched, seed=0, duration_jitter=0.0)
        validate_schedule(prog, res, topo8)
        by_name = {r.name: r for r in res.records}
        # pchild became ready at t=0.5 — long before the partition — and
        # ran immediately via the propagation policy.
        assert by_name["pchild"].start < 30.0
        assert by_name["ptail"].finish < 30.0
        # The window chain waited for the partition, then drained.
        assert by_name["wroot"].start >= 30.0
        assert by_name["wchild"].start >= by_name["wroot"].finish
        assert res.parked_tasks == 1
        assert sched.audit["window"] == 3
        assert sched.audit["propagated"] == 3

    def test_partition_done_is_noop_after_timeout(self, topo8):
        """When the timeout already declared the partition lost, the late
        partition-done event must not resurrect window placements."""
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=5.0,
            partition_timeout=0.5, partition_seed=1,
        )
        res = simulate(p, topo8, sched, seed=0)
        assert sched.audit.get("window", 0) == 0
        assert sched.audit["fallback"] == p.n_tasks
        assert res.n_tasks == p.n_tasks


class TestPartitionTimeout:
    def test_fallback_completes_and_validates(self, topo8):
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=5.0,
            partition_timeout=0.5, partition_seed=1,
        )
        res = simulate(p, topo8, sched, seed=0)
        validate_schedule(p, res, topo8)
        assert sched.audit["partition_timeout"] == 1
        # Parked roots were re-offered at the timeout, well before the
        # (lost) partition would have arrived.
        assert min(r.start for r in res.records) < 5.0

    def test_timeout_after_delay_never_fires(self, topo8):
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=1.0,
            partition_timeout=10.0, partition_seed=1,
        )
        res = simulate(p, topo8, sched, seed=0)
        assert "partition_timeout" not in sched.audit
        assert sched.audit["window"] == p.n_tasks
        assert res.n_tasks == p.n_tasks

    def test_raise_mode(self, topo8):
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=5.0,
            partition_timeout=0.5, on_timeout="raise", partition_seed=1,
        )
        with pytest.raises(PartitionTimeoutError, match="deadline"):
            simulate(p, topo8, sched, seed=0)

    def test_fault_plan_injects_timeout(self, topo8):
        """configure_faults adopts the plan's partition_timeout."""
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=5.0, partition_seed=1
        )
        plan = FaultPlan(partition_timeout=0.5)
        res = Simulator(p, topo8, sched, seed=0, faults=plan).run()
        assert sched.partition_timeout == 0.5
        assert sched.audit["partition_timeout"] == 1
        assert res.n_tasks == p.n_tasks

    def test_reused_scheduler_restores_configured_timeout(self, topo8):
        """Regression: a faulted run must not permanently adopt the plan's
        ``partition_timeout``.  Reusing the same scheduler object for a
        clean run must behave exactly like a freshly constructed one."""
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=5.0, partition_seed=1
        )
        Simulator(p, topo8, sched, seed=0,
                  faults=FaultPlan(partition_timeout=0.5)).run()
        assert sched.audit["partition_timeout"] == 1
        assert sched.partition_timeout == 0.5  # adopted for that run only

        res = Simulator(p, topo8, sched, seed=0).run()
        # attach() restored the constructor value, so the clean run waited
        # for the delayed partition instead of inheriting the 0.5 deadline.
        assert sched.partition_timeout is None
        assert min(r.start for r in res.records) >= 5.0  # no early fallback

        fresh = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=5.0, partition_seed=1
        )
        ref = Simulator(p, topo8, fresh, seed=0).run()
        assert res.makespan == ref.makespan
        assert [r.tid for r in res.records] == [r.tid for r in ref.records]

    def test_reuse_keeps_injected_timeout_within_faulted_runs(self, topo8):
        """The restore must not break re-injection: a second faulted run on
        the same scheduler still adopts its plan's deadline."""
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=5.0, partition_seed=1
        )
        for _ in range(2):
            res = Simulator(p, topo8, sched, seed=0,
                            faults=FaultPlan(partition_timeout=0.5)).run()
            assert res.n_tasks == p.n_tasks
            # The injected deadline fired: fallback placements started
            # before the 5.0 partition delay elapsed.
            assert sched.partition_timeout == 0.5
            assert min(r.start for r in res.records) < 5.0
            assert sched.audit["partition_timeout"] == 1

    def test_bad_timeout_rejected(self):
        with pytest.raises(SchedulerError):
            RGPLASScheduler(partition_timeout=-1.0)

    def test_bad_on_timeout_rejected(self):
        with pytest.raises(SchedulerError):
            RGPLASScheduler(on_timeout="shrug")


class TestCoreLossRemapping:
    def test_socket_wipe_remaps_window_assignments(self):
        topo = two_socket(cores_per_socket=2)
        p = chains_program(n_chains=4, length=6)
        sched = RGPLASScheduler(window_size=p.n_tasks, partition_seed=1)
        plan = FaultPlan(
            core_faults=(CoreFault(core=0, at=0.3), CoreFault(core=1, at=0.3))
        )
        sim = Simulator(p, topo, sched, seed=0, faults=plan, max_retries=20)
        res = sim.run()
        validate_schedule(p, res, topo)
        # Some window assignments pointed at socket 0 and were remapped.
        assert sched.audit["remapped"] > 0
        assert all(0 not in sim.quarantined or r.socket == 1
                   for r in res.records if r.start >= 0.3)

    def test_partial_core_loss_does_not_remap(self):
        topo = two_socket(cores_per_socket=2)
        p = chains_program(n_chains=4, length=6)
        sched = RGPLASScheduler(window_size=p.n_tasks, partition_seed=1)
        plan = FaultPlan(core_faults=(CoreFault(core=0, at=0.3),))
        res = Simulator(p, topo, sched, seed=0, faults=plan,
                        max_retries=20).run()
        validate_schedule(p, res, topo)
        # Socket 0 still has core 1: assignments stay put.
        assert "remapped" not in sched.audit


class TestTimeoutBoundarySemantics:
    """The deadline is *strict*: a pending delivery must arrive strictly
    before ``partition_timeout``, so at ``timeout == delay`` the timeout
    wins; and it only applies while a delivery is pending, so with
    ``partition_delay == 0`` (result available at launch) a configured or
    injected deadline is inert.  Regression: the timer used to be armed
    only for ``timeout < delay``, which silently disabled both edges."""

    def test_timeout_equal_to_delay_fires(self, topo8):
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=5.0,
            partition_timeout=5.0, partition_seed=1,
        )
        res = simulate(p, topo8, sched, seed=0)
        validate_schedule(p, res, topo8)
        assert sched.audit["partition_timeout"] == 1
        assert sched.audit["fallback"] == p.n_tasks
        assert sched.audit.get("window", 0) == 0

    def test_injected_timeout_equal_to_delay_fires(self, topo8):
        """Same boundary through the configure_faults path."""
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=5.0, partition_seed=1
        )
        plan = FaultPlan(partition_timeout=5.0)
        res = Simulator(p, topo8, sched, seed=0, faults=plan).run()
        assert sched.audit["partition_timeout"] == 1
        assert res.n_tasks == p.n_tasks

    def test_timeout_longer_than_delay_still_never_fires(self, topo8):
        """The timer is now always armed while a delivery is pending, but
        a delivery arriving strictly before the deadline must win."""
        p = chains_program()
        sched = RGPLASScheduler(
            window_size=p.n_tasks, partition_delay=1.0,
            partition_timeout=1.0 + 1e-6, partition_seed=1,
        )
        res = simulate(p, topo8, sched, seed=0)
        assert "partition_timeout" not in sched.audit
        assert sched.audit["window"] == p.n_tasks
        assert res.n_tasks == p.n_tasks

    def test_injected_timeout_with_zero_delay_is_inert(self, topo8):
        """``partition_delay=0`` delivers at launch: no deadline ever
        applies, byte-identically to the fault-free run."""
        p = chains_program()
        faulted = RGPLASScheduler(window_size=p.n_tasks, partition_seed=1)
        res_f = Simulator(
            p, topo8, faulted, seed=0,
            faults=FaultPlan(partition_timeout=0.5),
        ).run()
        assert "partition_timeout" not in faulted.audit

        clean = RGPLASScheduler(window_size=p.n_tasks, partition_seed=1)
        res_c = Simulator(p, topo8, clean, seed=0).run()
        key = lambda res: [
            (r.tid, r.core, r.start, r.finish) for r in res.records
        ]
        assert key(res_f) == key(res_c)


class TestRaiseModeSurfacesCleanly:
    def test_raise_mid_execution_leaves_simulator_clean(self, topo8):
        """``on_timeout="raise"`` fires from a timer callback while
        propagated tasks are mid-execution; the simulator must surface
        the error with no cores still marked busy."""
        p = TaskProgram("mixed")
        a = p.data("a", 65536)
        p.task("w0", outs=[a], work=0.5)
        p.task("w1", inouts=[a], work=0.5)
        p.task("w2", inouts=[a], work=0.5)
        for i in range(8):
            b = p.data(f"b{i}", 65536)
            p.task(f"free{i}", outs=[b], work=3.0)
        prog = p.finalize()
        sched = RGPLASScheduler(
            window_size=3, partition_delay=5.0, partition_timeout=0.5,
            on_timeout="raise", partition_seed=1,
        )
        sim = Simulator(prog, topo8, sched, seed=0)
        with pytest.raises(PartitionTimeoutError, match="deadline"):
            sim.run()
        # The free* tasks were running at t=0.5; the abort must have
        # released their cores.
        assert sim.running == {}
        n_idle = sum(len(sim.idle_cores[s]) for s in range(topo8.n_sockets))
        assert n_idle == topo8.n_cores
