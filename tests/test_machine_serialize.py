"""Tests for topology serialisation and numactl parsing."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.machine import (
    bullion_s16,
    load_topology,
    parse_numactl_hardware,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)

NUMACTL_OUTPUT = """\
available: 2 nodes (0-1)
node 0 cpus: 0 1 2 3
node 0 size: 64215 MB
node 0 free: 60000 MB
node 1 cpus: 4 5 6 7
node 1 size: 64509 MB
node 1 free: 61000 MB
node distances:
node   0   1
  0:  10  21
  1:  21  10
"""


class TestRoundTrip:
    def test_dict_round_trip(self):
        topo = bullion_s16()
        clone = topology_from_dict(topology_to_dict(topo))
        assert clone.n_sockets == topo.n_sockets
        assert clone.cores_per_socket == topo.cores_per_socket
        assert np.array_equal(clone.distance, topo.distance)
        assert clone.name == topo.name

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "machine.json"
        save_topology(bullion_s16(), path)
        clone = load_topology(path)
        assert clone.describe() == bullion_s16().describe()

    def test_missing_field(self):
        with pytest.raises(TopologyError, match="missing field"):
            topology_from_dict({"n_sockets": 2})

    def test_invalid_document_validated(self):
        doc = topology_to_dict(bullion_s16())
        doc["distance"][0][1] = -5.0
        with pytest.raises(TopologyError):
            topology_from_dict(doc)


class TestNumactl:
    def test_parses_two_socket_machine(self):
        topo = parse_numactl_hardware(NUMACTL_OUTPUT)
        assert topo.n_sockets == 2
        assert topo.cores_per_socket == 4
        assert topo.dist(0, 1) == 21.0
        assert topo.dist(0, 0) == 10.0

    def test_explicit_core_count_wins(self):
        topo = parse_numactl_hardware(NUMACTL_OUTPUT, cores_per_socket=2)
        assert topo.cores_per_socket == 2

    def test_missing_distances_section(self):
        with pytest.raises(TopologyError, match="node distances"):
            parse_numactl_hardware("available: 2 nodes (0-1)\n")

    def test_simulatable(self):
        """The parsed machine must plug straight into the simulator."""
        from repro.runtime import TaskProgram, simulate
        from repro.schedulers import make_scheduler

        topo = parse_numactl_hardware(NUMACTL_OUTPUT)
        p = TaskProgram()
        a = p.data("a", 65536)
        p.task(outs=[a], work=0.5)
        p.task(ins=[a], work=0.5)
        res = simulate(p.finalize(), topo, make_scheduler("las"), seed=0)
        assert res.n_tasks == 2
