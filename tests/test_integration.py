"""End-to-end shape tests: the paper's qualitative claims on small runs.

These assert the *direction* of Figure 1's effects at reduced scale (kept
small so the suite stays fast; the full-scale numbers live in benchmarks/
and EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.apps import make_app
from repro.experiments import ExperimentConfig
from repro.machine import bullion_s16, single_socket
from repro.runtime import Simulator, simulate
from repro.schedulers import make_scheduler

CFG = ExperimentConfig.quick(seeds=(0, 1))
TOPO = CFG.topology


def mean_makespan(prog, policy, seeds=(0, 1), **sched_kwargs):
    out = []
    for seed in seeds:
        sim = Simulator(
            prog, TOPO, make_scheduler(policy, **sched_kwargs),
            interconnect=CFG.interconnect(), steal=CFG.steal, seed=seed,
        )
        out.append(sim.run().makespan)
    return float(np.mean(out))


@pytest.fixture(scope="module")
def nstream_prog():
    return make_app("nstream", n_blocks=40, block_elems=16 * 1024,
                    iterations=8).build(8)


@pytest.fixture(scope="module")
def jacobi_prog():
    return make_app("jacobi", nt=8, tile=64, sweeps=6).build(8)


class TestFigure1Shape:
    def test_dfifo_loses_on_memory_bound(self, nstream_prog, jacobi_prog):
        for prog in (nstream_prog, jacobi_prog):
            las = mean_makespan(prog, "las")
            dfifo = mean_makespan(prog, "dfifo")
            assert dfifo > las * 1.3, "DFIFO must collapse on streams"

    def test_ep_and_rgp_beat_las_on_nstream(self, nstream_prog):
        las = mean_makespan(nstream_prog, "las")
        ep = mean_makespan(nstream_prog, "ep")
        rgp = mean_makespan(nstream_prog, "rgp+las", window_size=1024)
        assert las / ep > 1.3
        assert las / rgp > 1.3

    def test_rgp_close_to_ep_on_nstream(self, nstream_prog):
        ep = mean_makespan(nstream_prog, "ep")
        rgp = mean_makespan(nstream_prog, "rgp+las", window_size=1024)
        assert abs(ep - rgp) / ep < 0.2

    def test_qr_insensitive_to_policy(self):
        prog = make_app("qr", nt=6, tile=64).build(8)
        las = mean_makespan(prog, "las")
        dfifo = mean_makespan(prog, "dfifo")
        # Compute-bound: even DFIFO stays within ~2x (vs ~3x on streams).
        assert dfifo / las < 2.0

    def test_rgp_las_improves_locality_over_las(self, nstream_prog):
        seeds = (0, 1, 2)
        las_remote = np.mean([
            Simulator(nstream_prog, TOPO, make_scheduler("las"),
                      interconnect=CFG.interconnect(), steal=CFG.steal,
                      seed=s).run().load_imbalance()
            for s in seeds
        ])
        rgp_remote = np.mean([
            Simulator(nstream_prog, TOPO, make_scheduler("rgp+las"),
                      interconnect=CFG.interconnect(), steal=CFG.steal,
                      seed=s).run().load_imbalance()
            for s in seeds
        ])
        assert rgp_remote <= las_remote + 1e-9


class TestNUMASensitivity:
    def test_uma_machine_flattens_policies(self):
        """On a single socket all placements are equivalent (+/- jitter)."""
        topo = single_socket(cores=8)
        prog = make_app("nstream", n_blocks=16, block_elems=16 * 1024,
                        iterations=4).build(1)
        res_las = simulate(prog, topo, make_scheduler("las"), seed=0)
        res_dfifo = simulate(prog, topo, make_scheduler("dfifo"), seed=0)
        assert res_las.remote_fraction == 0.0
        assert res_dfifo.remote_fraction == 0.0
        assert abs(res_las.makespan - res_dfifo.makespan) / res_las.makespan < 0.15

    def test_remote_fraction_orders_policies(self, jacobi_prog):
        remote = {}
        for pol in ("dfifo", "las", "ep"):
            res = Simulator(jacobi_prog, TOPO, make_scheduler(pol),
                            interconnect=CFG.interconnect(),
                            steal=CFG.steal, seed=0).run()
            remote[pol] = res.remote_fraction
        assert remote["dfifo"] > remote["las"]
        assert remote["dfifo"] > remote["ep"]


class TestWindowEffect:
    def test_window_one_degenerates_towards_las(self, nstream_prog):
        """A 1-task window leaves almost everything to LAS propagation, so
        RGP+LAS(w=1) must behave like LAS rather than like EP."""
        las = mean_makespan(nstream_prog, "las")
        tiny = mean_makespan(nstream_prog, "rgp+las", window_size=1)
        full = mean_makespan(nstream_prog, "rgp+las", window_size=1024)
        assert abs(tiny - las) < abs(tiny - full)
