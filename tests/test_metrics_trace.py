"""Unit tests for trace export (CSV/JSON/Gantt)."""

import csv
import json

from repro.machine import two_socket
from repro.metrics import gantt_ascii, to_rows, write_csv, write_json
from repro.runtime import TaskProgram, simulate
from repro.schedulers import make_scheduler

from conftest import make_fan_program


def result():
    return simulate(make_fan_program(), two_socket(cores_per_socket=2),
                    make_scheduler("las"), seed=0)


def comma_result():
    """Run of a program whose task names contain CSV metacharacters."""
    prog = TaskProgram("commas")
    a = prog.data("a", 8192)
    prog.task('update(0,1)', outs=[a], work=1.0)
    prog.task('say "hi", twice', inouts=[a], work=1.0)
    prog.task("plain", inouts=[a], work=1.0)
    return simulate(prog.finalize(), two_socket(cores_per_socket=2),
                    make_scheduler("las"), seed=0)


class TestRows:
    def test_rows_sorted_by_start(self):
        rows = to_rows(result())
        starts = [r["start"] for r in rows]
        assert starts == sorted(starts)

    def test_rows_have_all_fields(self):
        rows = to_rows(result())
        assert set(rows[0]) == {"tid", "name", "socket", "core", "start",
                                "finish", "local_bytes", "remote_bytes"}

    def test_sort_key_is_total(self):
        """The documented (start, tid, attempt, core) key leaves no tie to
        input order: reversing the record list must not change the rows."""
        res = result()
        rows = to_rows(res)
        res.records.reverse()
        assert to_rows(res) == rows


class TestFiles:
    def test_csv_round_trip(self, tmp_path):
        res = result()
        path = tmp_path / "trace.csv"
        write_csv(res, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == res.n_tasks
        assert {r["name"] for r in rows} == {rec.name for rec in res.records}

    def test_csv_quotes_commas_in_names(self, tmp_path):
        """Regression: names with commas/quotes must survive a CSV
        round-trip unmangled (RFC 4180 quoting)."""
        res = comma_result()
        path = tmp_path / "trace.csv"
        write_csv(res, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == res.n_tasks
        names = {r["name"] for r in rows}
        assert names == {'update(0,1)', 'say "hi", twice', "plain"}
        # Every row still has exactly the declared columns (no spillover
        # of a comma-split name into the socket/core fields).
        for row in rows:
            assert row["socket"].isdigit() and row["core"].isdigit()

    def test_json_contents(self, tmp_path):
        res = result()
        path = tmp_path / "trace.json"
        write_json(res, path)
        doc = json.loads(path.read_text())
        assert doc["scheduler"] == "las"
        assert doc["makespan"] == res.makespan
        assert len(doc["tasks"]) == res.n_tasks
        assert len(doc["bytes_by_pair"]) == 2


class TestGantt:
    def test_gantt_mentions_cores(self):
        text = gantt_ascii(result())
        assert "core" in text
        assert "#" in text

    def test_gantt_empty(self):
        from repro.runtime import TaskProgram

        res = simulate(TaskProgram().finalize(), two_socket(),
                       make_scheduler("random"))
        assert gantt_ascii(res) == "(empty trace)"
