"""Tests for the scheduler decision audit and per-task locality records."""

import pytest

from repro.apps import make_app
from repro.machine import bullion_s16
from repro.runtime import TaskProgram, simulate
from repro.schedulers import LASScheduler, make_scheduler


class TestLASAudit:
    def test_cold_start_counts_random(self, topo8):
        p = TaskProgram()
        for i in range(16):
            a = p.data(f"a{i}", 65536)
            p.task(outs=[a], work=0.01)
        sched = LASScheduler()
        simulate(p.finalize(), topo8, sched, seed=0)
        assert sched.audit.get("random", 0) == 16
        assert sched.audit.get("weighted", 0) == 0

    def test_warm_tasks_count_weighted(self, topo8):
        p = TaskProgram()
        a = p.data("a", 262144, initial_node=2)
        for _ in range(5):
            p.task(inouts=[a], work=0.01)
        sched = LASScheduler()
        simulate(p.finalize(), topo8, sched, seed=0)
        assert sched.audit.get("weighted", 0) == 5
        assert sched.audit.get("random", 0) == 0

    def test_tie_counted(self, topo8):
        p = TaskProgram()
        a = p.data("a", 65536, initial_node=1)
        b = p.data("b", 65536, initial_node=6)
        p.task(ins=[a, b], work=0.01)
        sched = LASScheduler()
        simulate(p.finalize(), topo8, sched, seed=0)
        assert sched.audit.get("tie", 0) == 1

    def test_poster_threshold_shifts_mix(self, topo8):
        """The 0.5 rule must strictly increase the random fraction on an
        output-dominated workload."""
        def mix(threshold):
            prog = make_app("histogram", nt=4, tile=8, n_bins=4,
                            repeats=2).build(8)
            sched = LASScheduler(random_threshold=threshold)
            simulate(prog, topo8, sched, seed=0)
            total = sum(sched.audit.values())
            return sched.audit.get("random", 0) / total

        assert mix(0.5) > mix(0.0)


class TestAuditCompleteness:
    """Both tie-break modes share one decision path, so every placed task
    lands in exactly one audit bucket (regression for the duplicated
    ``tie_break="first"`` branch that bypassed the taxonomy)."""

    @pytest.mark.parametrize("tie_break", ["random", "first"])
    def test_audit_totals_equal_task_count(self, topo8, tie_break):
        prog = make_app("jacobi", nt=3, tile=16, sweeps=2).build(8)
        sched = LASScheduler(tie_break=tie_break)
        res = simulate(prog, topo8, sched, seed=0)
        assert sum(sched.audit.values()) == prog.n_tasks == res.n_tasks
        assert set(sched.audit) <= {"random", "weighted", "tie"}

    def test_tie_break_modes_agree_on_taxonomy(self, topo8):
        """Same workload, same seed: the branch mix is identical — "first"
        only changes how a tie is resolved, never how it is classified."""
        audits = {}
        for tie_break in ("random", "first"):
            prog = make_app("jacobi", nt=3, tile=16, sweeps=2).build(8)
            sched = LASScheduler(tie_break=tie_break)
            simulate(prog, topo8, sched, seed=0)
            audits[tie_break] = dict(sched.audit)
        assert audits["random"] == audits["first"]


class TestRGPAudit:
    def test_window_vs_propagated_split(self, topo8):
        prog = make_app("nstream", n_blocks=8, block_elems=1024,
                        iterations=4).build(8)
        sched = make_scheduler("rgp+las", window_size=10)
        simulate(prog, topo8, sched, seed=0)
        assert sched.audit["window"] == 10
        assert sched.audit["propagated"] == prog.n_tasks - 10


class TestRecordLocality:
    def test_record_bytes_sum_to_result_totals(self, topo8):
        prog = make_app("jacobi", nt=3, tile=16, sweeps=2).build(8)
        res = simulate(prog, topo8, make_scheduler("las"), seed=0,
                       duration_jitter=0.0)
        local = sum(r.local_bytes for r in res.records)
        remote = sum(r.remote_bytes for r in res.records)
        assert local == pytest.approx(res.local_bytes)
        assert remote == pytest.approx(res.remote_bytes)

    def test_record_remote_fraction_bounds(self, topo8):
        prog = make_app("nstream", n_blocks=6, block_elems=1024,
                        iterations=3).build(8)
        res = simulate(prog, topo8, make_scheduler("dfifo"), seed=0)
        for r in res.records:
            assert 0.0 <= r.remote_fraction <= 1.0


class TestAuditResetPerRun:
    """Regression: per-run scheduler state was only initialised in
    ``__init__``, so a scheduler object reused across runs accumulated the
    previous run's counts (RGP/LAS audit) or continued a stale cyclic
    counter (DFIFO)."""

    @staticmethod
    def _staircase_program(n=16):
        p = TaskProgram("stairs")
        a = p.data("a", 65536)
        p.task("t0", outs=[a], work=0.2)
        for i in range(1, n):
            p.task(f"t{i}", inouts=[a], work=0.2)
        return p.finalize()

    def test_rgp_las_audit_resets_across_runs(self, topo8):
        from repro.core import RGPLASScheduler

        p = self._staircase_program()
        sched = RGPLASScheduler(window_size=4, partition_seed=1)
        for run in (1, 2):
            simulate(p, topo8, sched, seed=0)
            placed = (
                sched.audit.get("window", 0)
                + sched.audit.get("propagated", 0)
                + sched.audit.get("fallback", 0)
            )
            assert placed == p.n_tasks, f"run {run}: audit {sched.audit}"
            # The LAS branch breakdown only covers propagated decisions.
            las_branches = sum(
                sched.audit.get(k, 0) for k in ("random", "weighted", "tie")
            )
            assert las_branches == sched.audit.get("propagated", 0)

    def test_las_audit_resets_across_runs(self, topo8):
        p = self._staircase_program()
        sched = LASScheduler()
        for run in (1, 2):
            simulate(p, topo8, sched, seed=0)
            total = sum(
                sched.audit.get(k, 0) for k in ("random", "weighted", "tie")
            )
            assert total == p.n_tasks, f"run {run}: audit {sched.audit}"

    def test_dfifo_cyclic_order_restarts_across_runs(self, topo8):
        p = self._staircase_program()
        sched = make_scheduler("dfifo")
        first = simulate(p, topo8, sched, seed=0)
        second = simulate(p, topo8, sched, seed=0)
        assert [(r.tid, r.core) for r in first.records] == [
            (r.tid, r.core) for r in second.records
        ]
