"""Unit tests for NUMA topology construction and queries."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.machine import (
    NumaTopology,
    bullion_s16,
    by_name,
    custom,
    four_socket,
    hierarchical_distance_matrix,
    single_socket,
    two_socket,
    uniform_distance_matrix,
)


class TestConstruction:
    def test_core_and_node_counts(self):
        topo = bullion_s16()
        assert topo.n_sockets == 8
        assert topo.cores_per_socket == 4
        assert topo.n_cores == 32
        assert topo.n_nodes == 8

    def test_socket_of_core_grouping(self):
        topo = bullion_s16()
        assert topo.socket_of_core(0) == 0
        assert topo.socket_of_core(3) == 0
        assert topo.socket_of_core(4) == 1
        assert topo.socket_of_core(31) == 7

    def test_cores_of_socket_contiguous(self):
        topo = bullion_s16()
        assert list(topo.cores_of_socket(2)) == [8, 9, 10, 11]

    def test_core_out_of_range(self):
        with pytest.raises(TopologyError):
            bullion_s16().socket_of_core(32)

    def test_socket_out_of_range(self):
        with pytest.raises(TopologyError):
            bullion_s16().cores_of_socket(8)

    def test_rejects_zero_sockets(self):
        with pytest.raises(TopologyError):
            NumaTopology(0, 4, uniform_distance_matrix(1), 1e6)

    def test_rejects_zero_cores(self):
        with pytest.raises(TopologyError):
            NumaTopology(2, 0, uniform_distance_matrix(2), 1e6)

    def test_rejects_asymmetric_distance(self):
        dist = uniform_distance_matrix(2)
        dist = dist.copy()
        dist[0, 1] = 30.0
        with pytest.raises(TopologyError):
            NumaTopology(2, 2, dist, 1e6)

    def test_rejects_nonminimal_diagonal(self):
        dist = np.array([[25.0, 20.0], [20.0, 10.0]])
        with pytest.raises(TopologyError):
            NumaTopology(2, 2, dist, 1e6)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(TopologyError):
            NumaTopology(2, 2, uniform_distance_matrix(2), 0.0)

    def test_distance_matrix_immutable(self):
        topo = two_socket()
        with pytest.raises(ValueError):
            topo.distance[0, 1] = 5.0


class TestDistances:
    def test_bandwidth_factor_local_is_one(self):
        topo = bullion_s16()
        for s in topo.sockets():
            assert topo.bandwidth_factor(s, s) == pytest.approx(1.0)

    def test_bandwidth_factor_decreases_with_distance(self):
        topo = bullion_s16()
        near = topo.bandwidth_factor(0, 1)  # same module
        far = topo.bandwidth_factor(0, 7)  # across modules
        assert 0 < far < near < 1.0

    def test_sockets_by_distance_starts_local(self):
        topo = bullion_s16()
        order = topo.sockets_by_distance(3)
        assert order[0] == 3
        assert order[1] == 2  # module sibling of socket 3
        assert sorted(order) == list(range(8))

    def test_sockets_by_distance_deterministic_ties(self):
        topo = four_socket()
        assert topo.sockets_by_distance(2) == [2, 0, 1, 3]

    def test_max_distance(self):
        assert bullion_s16().max_distance() == pytest.approx(22.0)

    def test_dist_symmetry(self):
        topo = bullion_s16()
        for a in topo.sockets():
            for b in topo.sockets():
                assert topo.dist(a, b) == topo.dist(b, a)


class TestMatrices:
    def test_uniform_matrix(self):
        m = uniform_distance_matrix(3, remote=21.0)
        assert m.shape == (3, 3)
        assert np.all(np.diag(m) == 10.0)
        assert m[0, 1] == 21.0

    def test_uniform_rejects_remote_below_local(self):
        with pytest.raises(TopologyError):
            uniform_distance_matrix(3, remote=5.0)

    def test_hierarchical_matrix_groups(self):
        m = hierarchical_distance_matrix(8, group_size=2, near=16.0, far=22.0)
        assert m[0, 1] == 16.0  # same module
        assert m[0, 2] == 22.0  # across modules
        assert m[6, 7] == 16.0
        assert np.all(np.diag(m) == 10.0)

    def test_hierarchical_rejects_bad_group(self):
        with pytest.raises(TopologyError):
            hierarchical_distance_matrix(8, group_size=3)

    def test_hierarchical_rejects_unordered(self):
        with pytest.raises(TopologyError):
            hierarchical_distance_matrix(8, group_size=2, near=30.0, far=22.0)


class TestPresets:
    def test_by_name_round_trip(self):
        for name in ("bullion-s16", "two-socket", "four-socket", "single-socket"):
            assert by_name(name).name == name

    def test_by_name_unknown(self):
        with pytest.raises(KeyError, match="unknown machine preset"):
            by_name("cray")

    def test_single_socket_is_uma(self):
        topo = single_socket(cores=6)
        assert topo.n_sockets == 1
        assert topo.n_cores == 6
        assert topo.bandwidth_factor(0, 0) == 1.0

    def test_custom(self):
        topo = custom(3, 5, remote=30.0, name="weird")
        assert topo.n_sockets == 3
        assert topo.cores_per_socket == 5
        assert topo.dist(0, 2) == 30.0

    def test_describe_mentions_counts(self):
        text = bullion_s16().describe()
        assert "8 sockets" in text and "32 cores" in text
