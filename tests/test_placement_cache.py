"""Tests for the incremental placement cache (DESIGN.md §9).

The MemoryManager memoises per-(object, range) placements under a
version counter that only advances when a placement actually changes.
These tests pin down the three contracts the scheduling hot path relies
on: cached answers always equal a fresh recompute, cache state is
invisible to schedules (byte-identical runs with the cache on or off),
and the ``REPRO_CHECK_CACHE`` oracle really catches divergence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.machine import MemoryManager, two_socket
from repro.machine.memory import RegionPlacement
from repro.runtime import TaskProgram, allocated_bytes_per_node, simulate
from repro.schedulers import SCHEDULERS, make_scheduler

from conftest import make_fan_program

N_NODES = 4
PAGE = 4096


def fresh_pair(sizes):
    """A cached manager and an uncached twin registered identically."""
    cached = MemoryManager(N_NODES, page_size=PAGE, cache=True)
    plain = MemoryManager(N_NODES, page_size=PAGE, cache=False)
    for key, size in enumerate(sizes):
        cached.register(key, size)
        plain.register(key, size)
    return cached, plain


class TestVersionSemantics:
    def test_first_touch_bumps_version(self):
        mm = MemoryManager(N_NODES, page_size=PAGE)
        mm.register(0, 4 * PAGE)
        v0 = mm.object_version(0)
        mm.touch(0, 1)
        assert mm.object_version(0) == v0 + 1

    def test_redundant_touch_keeps_version(self):
        mm = MemoryManager(N_NODES, page_size=PAGE)
        mm.register(0, 4 * PAGE)
        mm.touch(0, 1)
        v1 = mm.object_version(0)
        mm.touch(0, 2)  # every page already bound: no placement change
        assert mm.object_version(0) == v1

    def test_rebind_same_node_keeps_version(self):
        mm = MemoryManager(N_NODES, page_size=PAGE)
        mm.register(0, 4 * PAGE)
        mm.bind(0, 3)
        v1 = mm.object_version(0)
        mm.bind(0, 3)
        assert mm.object_version(0) == v1

    def test_noop_migrate_keeps_version(self):
        mm = MemoryManager(N_NODES, page_size=PAGE)
        mm.register(0, 2 * PAGE)
        mm.migrate(0, 2)  # nothing bound yet, nothing moves
        assert mm.object_version(0) == mm.object_version(0)
        mm.bind(0, 2)
        v = mm.object_version(0)
        mm.migrate(0, 2)  # already all on node 2
        assert mm.object_version(0) == v

    def test_reset_placement_invalidates_everything(self):
        mm = MemoryManager(N_NODES, page_size=PAGE)
        mm.register(0, 2 * PAGE)
        mm.bind(0, 1)
        before = mm.object_version(0)
        mm.node_bytes_of_range(0)
        assert mm.cache_entries == 1
        mm.reset_placement()
        assert mm.object_version(0) == before + 1
        assert mm.cache_entries == 0
        assert mm.node_bytes_of_range(0).total_bound == 0


class TestRangeCache:
    def test_hit_and_miss_counters(self):
        mm = MemoryManager(N_NODES, page_size=PAGE)
        mm.register(0, 4 * PAGE)
        mm.bind(0, 1)
        mm.node_bytes_of_range(0)
        mm.node_bytes_of_range(0)
        assert mm.cache_misses == 1
        assert mm.cache_hits == 1

    def test_stale_entry_recomputed_after_change(self):
        mm = MemoryManager(N_NODES, page_size=PAGE)
        mm.register(0, 4 * PAGE)
        mm.bind(0, 1)
        assert mm.node_bytes_of_range(0).bytes_per_node[1] == 4 * PAGE
        mm.migrate(0, 3)
        placement = mm.node_bytes_of_range(0)
        assert placement.bytes_per_node[3] == 4 * PAGE
        assert placement.bytes_per_node[1] == 0

    def test_cached_array_is_read_only(self):
        mm = MemoryManager(N_NODES, page_size=PAGE)
        mm.register(0, PAGE)
        mm.bind(0, 0)
        placement = mm.node_bytes_of_range(0)
        with pytest.raises(ValueError):
            placement.bytes_per_node[0] = 123

    def test_cache_disabled_never_memoises(self):
        mm = MemoryManager(N_NODES, page_size=PAGE, cache=False)
        mm.register(0, PAGE)
        mm.node_bytes_of_range(0)
        mm.node_bytes_of_range(0)
        assert mm.cache_entries == 0
        assert mm.cache_hits == 0


class TestOracle:
    def test_env_var_enables_check(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_CACHE", "1")
        assert MemoryManager(N_NODES).check_cache
        monkeypatch.setenv("REPRO_CHECK_CACHE", "0")
        assert not MemoryManager(N_NODES).check_cache

    def test_range_oracle_catches_poisoned_entry(self):
        mm = MemoryManager(N_NODES, page_size=PAGE, check=True)
        mm.register(0, 2 * PAGE)
        mm.bind(0, 1)
        mm.node_bytes_of_range(0)  # populate
        wrong = np.zeros(N_NODES, dtype=np.int64)
        wrong[2] = 2 * PAGE
        key = (0, 0, 2 * PAGE)
        ver = mm._range_cache[key][0]
        mm._range_cache[key] = (ver, RegionPlacement(wrong, 0))
        with pytest.raises(MemoryError_, match="divergence"):
            mm.node_bytes_of_range(0)

    def test_task_oracle_catches_poisoned_entry(self):
        prog = TaskProgram()
        a = prog.data("a", 2 * PAGE)
        task = prog.task(ins=[a])
        mm = MemoryManager(N_NODES, page_size=PAGE, check=True)
        mm.register(0, 2 * PAGE)
        mm.bind(0, 1)
        allocated_bytes_per_node(task, mm)  # populate
        sig, per_node, unbound = mm.task_cache[task]
        wrong = per_node.copy()
        wrong[1] = 0
        wrong[0] = 2 * PAGE
        mm.task_cache[task] = (sig, wrong, unbound)
        with pytest.raises(MemoryError_, match="divergence"):
            allocated_bytes_per_node(task, mm)

    def test_honest_cache_passes_oracle(self):
        prog = TaskProgram()
        a = prog.data("a", 3 * PAGE)
        task = prog.task(ins=[a])
        mm = MemoryManager(N_NODES, page_size=PAGE, check=True)
        mm.register(0, 3 * PAGE)
        for _ in range(3):
            mm.touch(0, 2)
            allocated_bytes_per_node(task, mm)
            allocated_bytes_per_node(task, mm)
            mm.migrate(0, 1)
            allocated_bytes_per_node(task, mm)


@st.composite
def cache_workloads(draw, max_objects=3, max_ops=40):
    """Interleavings of placement mutations and range queries."""
    n_objects = draw(st.integers(min_value=1, max_value=max_objects))
    sizes = [
        draw(st.integers(min_value=1, max_value=8 * PAGE))
        for _ in range(n_objects)
    ]
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_ops))):
        kind = draw(st.sampled_from(
            ["touch", "bind", "migrate", "interleave", "query"]
        ))
        key = draw(st.integers(min_value=0, max_value=n_objects - 1))
        node = draw(st.integers(min_value=0, max_value=N_NODES - 1))
        offset = draw(st.integers(min_value=0, max_value=max(0, sizes[key] - 1)))
        length = draw(st.integers(min_value=0, max_value=sizes[key] - offset))
        ops.append((kind, key, node, offset, length))
    return sizes, ops


@given(cache_workloads())
@settings(max_examples=60, deadline=None)
def test_cache_always_matches_fresh_recompute(workload):
    """Property (satellite d): after any interleaving of binds, reads and
    placement degradations, a cached query equals a cache-free recompute."""
    sizes, ops = workload
    cached, plain = fresh_pair(sizes)
    for kind, key, node, offset, length in ops:
        if kind == "query":
            got = cached.node_bytes_of_range(key, offset, length)
            want = plain.node_bytes_of_range(key, offset, length)
            np.testing.assert_array_equal(got.bytes_per_node,
                                          want.bytes_per_node)
            assert got.unbound_bytes == want.unbound_bytes
            continue
        for mm in (cached, plain):
            if kind == "touch":
                mm.touch(key, node, offset, length)
            elif kind == "bind":
                mm.bind(key, node, offset, length)
            elif kind == "migrate":
                mm.migrate(key, node)
            else:
                mm.interleave(key, [node, (node + 1) % N_NODES])
    # Final full-object sweep so every object is compared at least once.
    for key in range(len(sizes)):
        got = cached.node_bytes_of_range(key)
        want = plain.node_bytes_of_range(key)
        np.testing.assert_array_equal(got.bytes_per_node, want.bytes_per_node)
        assert got.unbound_bytes == want.unbound_bytes


class TestZeroOverheadSemantics:
    """The cache must never change a schedule, for any policy."""

    @pytest.mark.parametrize("policy", sorted(SCHEDULERS))
    def test_schedules_byte_identical(self, policy):
        topo = two_socket(cores_per_socket=2)
        program = make_fan_program(width=6)
        for t in program.tasks:  # annotation only the EP policy reads
            t.meta["ep_socket"] = t.tid % topo.n_sockets
        results = {}
        for cache in (False, True):
            res = simulate(program, topo, make_scheduler(policy), seed=7,
                           placement_cache=cache)
            results[cache] = res
        a, b = results[False], results[True]
        assert a.makespan == b.makespan
        assert len(a.records) == len(b.records)
        for ra, rb in zip(a.records, b.records):
            assert (ra.tid, ra.core, ra.socket) == (rb.tid, rb.core, rb.socket)
            assert (ra.start, ra.finish) == (rb.start, rb.finish)
            assert ra.local_bytes == rb.local_bytes
            assert ra.remote_bytes == rb.remote_bytes

    def test_oracle_run_matches_plain_cached_run(self):
        topo = two_socket(cores_per_socket=2)
        program = make_fan_program(width=4)
        from repro.runtime import Simulator

        sim = Simulator(program, topo, make_scheduler("las"), seed=3)
        sim.memory.check_cache = True  # REPRO_CHECK_CACHE oracle
        res = sim.run()
        ref = simulate(program, topo, make_scheduler("las"), seed=3)
        assert res.makespan == ref.makespan
