"""Tests for DOT export of TDGs."""

import numpy as np

from repro.graph import chain, to_dot, write_dot


class TestDot:
    def test_contains_nodes_and_edges(self):
        g = chain(3)
        dot = to_dot(g)
        assert dot.startswith("digraph")
        assert "n0 -> n1" in dot and "n1 -> n2" in dot
        assert dot.count("fillcolor") == 3

    def test_partition_colors(self):
        g = chain(4)
        dot = to_dot(g, parts=np.array([0, 0, 1, 1]))
        assert "lightblue" in dot and "lightcoral" in dot

    def test_truncation(self):
        g = chain(50)
        dot = to_dot(g, max_nodes=10)
        assert "truncated" in dot
        assert "n10 " not in dot.replace("n10 ->", "")

    def test_edge_penwidth_scales(self):
        from repro.graph import TaskGraph

        g = TaskGraph()
        for _ in range(3):
            g.add_node()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 100.0)
        dot = to_dot(g)
        assert "penwidth=3.5" in dot  # the heavy edge
        assert "penwidth=0.5" in dot or "penwidth=0.53" in dot

    def test_write_dot(self, tmp_path):
        path = tmp_path / "g.dot"
        write_dot(chain(3), path)
        assert path.read_text().startswith("digraph")

    def test_labels_used(self):
        g = chain(2)
        # chain() has no labels; default t<i> used.
        assert 'label="t0"' in to_dot(g)
