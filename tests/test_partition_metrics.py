"""Unit tests for partition quality metrics."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import CSRGraph
from repro.partition import (
    communication_volume,
    edge_cut,
    imbalance,
    mapping_cost,
    part_sizes,
)


@pytest.fixture
def square():
    """4-cycle 0-1-2-3-0 with unit weights."""
    return CSRGraph.from_edges(
        4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]
    )


class TestEdgeCut:
    def test_no_cut(self, square):
        assert edge_cut(square, np.zeros(4, dtype=int)) == 0.0

    def test_full_cut(self, square):
        assert edge_cut(square, np.array([0, 1, 0, 1])) == 4.0

    def test_half_cut(self, square):
        assert edge_cut(square, np.array([0, 0, 1, 1])) == 2.0

    def test_weighted(self):
        g = CSRGraph.from_edges(2, [(0, 1, 7.5)])
        assert edge_cut(g, np.array([0, 1])) == 7.5

    def test_length_mismatch(self, square):
        with pytest.raises(PartitionError):
            edge_cut(square, np.zeros(3, dtype=int))


class TestImbalance:
    def test_perfect(self, square):
        assert imbalance(square, np.array([0, 0, 1, 1]), 2) == pytest.approx(0.0)

    def test_skewed(self, square):
        # 3 vs 1 on k=2: heaviest part = 3 / ideal 2 -> 0.5.
        assert imbalance(square, np.array([0, 0, 0, 1]), 2) == pytest.approx(0.5)

    def test_empty_part_counts(self, square):
        # All on part 0 of 4: 4 / 1 - 1 = 3.
        assert imbalance(square, np.zeros(4, dtype=int), 4) == pytest.approx(3.0)

    def test_capacities(self, square):
        caps = np.array([3.0, 1.0])
        assert imbalance(square, np.array([0, 0, 0, 1]), 2, caps) == pytest.approx(0.0)


class TestMappingCost:
    def test_local_only(self, square):
        arch = np.array([[10.0, 20.0], [20.0, 10.0]])
        cost = mapping_cost(square, np.zeros(4, dtype=int), arch)
        assert cost == pytest.approx(4 * 10.0)

    def test_cut_pays_distance(self, square):
        arch = np.array([[10.0, 20.0], [20.0, 10.0]])
        cost = mapping_cost(square, np.array([0, 0, 1, 1]), arch)
        assert cost == pytest.approx(2 * 10.0 + 2 * 20.0)

    def test_prefers_near_parts(self, square):
        arch = np.array(
            [[10.0, 12.0, 30.0], [12.0, 10.0, 30.0], [30.0, 30.0, 10.0]]
        )
        near = mapping_cost(square, np.array([0, 0, 1, 1]), arch)
        far = mapping_cost(square, np.array([0, 0, 2, 2]), arch)
        assert near < far


class TestVolumes:
    def test_communication_volume(self, square):
        # Parts 0,1 alternating: every vertex sees one foreign part.
        assert communication_volume(square, np.array([0, 1, 0, 1]), 2) == 4.0

    def test_part_sizes(self):
        assert list(part_sizes(np.array([0, 1, 1, 3]), 4)) == [1, 2, 0, 1]
