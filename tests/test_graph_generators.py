"""Unit tests for synthetic DAG generators."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    binary_in_tree,
    chain,
    fork_join,
    grid_graph,
    independent_chains,
    is_acyclic,
    random_layered,
    stencil_2d,
    topological_order,
)


class TestChain:
    def test_structure(self):
        g = chain(4, edge_bytes=3.0)
        assert g.n_nodes == 4
        assert g.n_edges == 3
        assert g.edge_weight(1, 2) == 3.0

    def test_empty(self):
        assert chain(0).n_nodes == 0

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            chain(-1)


class TestIndependentChains:
    def test_counts(self):
        g = independent_chains(5, 4)
        assert g.n_nodes == 20
        assert g.n_edges == 15

    def test_no_cross_edges(self):
        g = independent_chains(3, 3)
        for src, dst, _ in g.edges():
            assert src // 3 == dst // 3


class TestForkJoin:
    def test_counts(self):
        g = fork_join(width=3, n_phases=2)
        assert g.n_nodes == 1 + 2 * 4
        assert g.roots() == [0]
        assert len(g.leaves()) == 1


class TestStencil:
    def test_first_sweep_independent(self):
        g = stencil_2d(3, 3, 1)
        assert g.n_edges == 0

    def test_second_sweep_dependencies(self):
        g = stencil_2d(2, 2, 2)
        # Each sweep-2 node depends on its own + up to 2 neighbours (2x2).
        assert g.n_nodes == 8
        assert all(g.in_degree(v) == 3 for v in range(4, 8))

    def test_bad_dims(self):
        with pytest.raises(GraphError):
            stencil_2d(0, 3, 1)


class TestTree:
    def test_reduction_counts(self):
        g = binary_in_tree(3)
        assert g.n_nodes == 8 + 4 + 2 + 1
        assert len(g.leaves()) == 1
        assert len(g.roots()) == 8

    def test_depth_zero(self):
        assert binary_in_tree(0).n_nodes == 1


class TestRandomLayered:
    def test_deterministic_by_seed(self):
        a = random_layered(4, 6, seed=7)
        b = random_layered(4, 6, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seed_differs(self):
        a = random_layered(4, 6, seed=1)
        b = random_layered(4, 6, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_all_nonroot_layers_have_parents(self):
        g = random_layered(5, 4, edge_prob=0.05, seed=3)
        for v in range(4, g.n_nodes):
            assert g.in_degree(v) >= 1

    def test_acyclic(self):
        g = random_layered(6, 5, seed=11)
        assert is_acyclic(g)
        topological_order(g)

    def test_bad_prob(self):
        with pytest.raises(GraphError):
            random_layered(2, 2, edge_prob=1.5)


class TestGrid:
    def test_counts(self):
        g = grid_graph(3, 4)
        assert g.n_nodes == 12
        # right edges: 2*4, down edges: 3*3
        assert g.n_edges == 2 * 4 + 3 * 3

    def test_bad_dims(self):
        with pytest.raises(GraphError):
            grid_graph(0, 1)
