"""Tests of the full partitioners: multilevel, DRB, spectral, baselines."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import (
    CSRGraph,
    binary_in_tree,
    grid_graph,
    independent_chains,
    random_layered,
)
from repro.machine import bullion_s16
from repro.partition import (
    PARTITIONERS,
    BlockPartitioner,
    CyclicPartitioner,
    DualRecursiveBipartitioner,
    MultilevelKWay,
    MultilevelKWayKL,
    PartitionResult,
    RandomPartitioner,
    SpectralPartitioner,
    TargetArchitecture,
    by_name,
    edge_cut,
    imbalance,
    mapping_cost,
    partition_onto,
    split_architecture,
)

SERIOUS = [
    DualRecursiveBipartitioner, MultilevelKWay, MultilevelKWayKL,
    SpectralPartitioner,
]
ALL = SERIOUS + [RandomPartitioner, CyclicPartitioner, BlockPartitioner]


@pytest.fixture(scope="module")
def grid():
    return CSRGraph.from_tdg(grid_graph(16, 16))


@pytest.fixture(scope="module")
def chains():
    return CSRGraph.from_tdg(independent_chains(16, 8, edge_bytes=10.0))


@pytest.fixture(scope="module")
def target8():
    return TargetArchitecture.from_topology(bullion_s16())


@pytest.mark.parametrize("cls", ALL)
class TestContract:
    def test_partition_in_range(self, cls, grid):
        res = cls().partition(grid, 5, seed=0)
        assert res.k == 5
        assert res.parts.min() >= 0 and res.parts.max() < 5
        assert len(res) == grid.n_vertices

    def test_balance_within_tolerance(self, cls, grid):
        res = cls(tolerance=0.05).partition(grid, 4, seed=1)
        slack = grid.vwgt.max() / (grid.vwgt.sum() / 4)
        assert imbalance(grid, res.parts, 4) <= 0.05 + slack + 1e-9

    def test_k1_trivial(self, cls, grid):
        res = cls().partition(grid, 1, seed=0)
        assert set(res.parts) == {0}

    def test_bad_k(self, cls, grid):
        with pytest.raises(PartitionError):
            cls().partition(grid, 0)


@pytest.fixture(scope="module")
def tiny():
    return CSRGraph.from_edges(
        3, [(0, 1, 2.0), (1, 2, 1.0)], np.array([1.0, 2.0, 3.0])
    )


@pytest.mark.parametrize("name", sorted(PARTITIONERS))
class TestInterfaceContract:
    """Regression tests for the latent _check_k / PartitionResult bugs:
    every registered backend must reject k > n_vertices and k < 1 instead
    of silently emitting empty or out-of-range parts."""

    def test_oversized_k_raises(self, name, tiny):
        with pytest.raises(PartitionError, match="cannot partition"):
            by_name(name).partition(tiny, 4)

    def test_k_below_one_raises(self, name, tiny):
        for bad in (0, -1):
            with pytest.raises(PartitionError):
                by_name(name).partition(tiny, bad)


class TestPartitionResultContract:
    def test_rejects_k_below_one(self):
        with pytest.raises(PartitionError, match="k must be >= 1"):
            PartitionResult(parts=np.zeros(3, dtype=np.int64), k=0)

    def test_rejects_negative_k(self):
        with pytest.raises(PartitionError):
            PartitionResult(parts=np.zeros(3, dtype=np.int64), k=-2)


class TestPartitionOnto:
    def test_delegates_when_k_fits(self, tiny):
        res = partition_onto(MultilevelKWay(), tiny, 2, seed=0)
        assert res.k == 2
        assert not res.meta.get("spread")

    def test_spreads_when_k_exceeds_n(self, tiny):
        res = partition_onto(MultilevelKWay(), tiny, 5, seed=0)
        assert res.k == 5
        assert res.meta.get("spread") is True
        # Injective: every vertex alone in its part.
        assert len(np.unique(res.parts)) == tiny.n_vertices

    def test_spread_matches_heavy_to_roomy(self, tiny):
        target = TargetArchitecture(
            distance=np.ones((4, 4)) - np.eye(4),
            capacity=np.array([1.0, 4.0, 2.0, 3.0]),
        )
        res = partition_onto(MultilevelKWay(), tiny, 4, target=target, seed=0)
        # Heaviest vertex (id 2, weight 3) -> roomiest part (id 1, cap 4).
        assert res.parts[2] == 1

    def test_rejects_bad_k(self, tiny):
        with pytest.raises(PartitionError):
            partition_onto(MultilevelKWay(), tiny, 0)


@pytest.mark.parametrize("cls", SERIOUS)
class TestQuality:
    def test_beats_random_on_grid(self, cls, grid):
        cut = edge_cut(grid, cls().partition(grid, 8, seed=0).parts)
        rand = edge_cut(grid, RandomPartitioner().partition(grid, 8, seed=0).parts)
        assert cut < rand / 3

    def test_zero_cut_on_disjoint_chains(self, cls, chains):
        res = cls().partition(chains, 8, seed=0)
        assert edge_cut(chains, res.parts) == 0.0

    def test_deterministic_given_seed(self, cls, grid):
        a = cls().partition(grid, 4, seed=9).parts
        b = cls().partition(grid, 4, seed=9).parts
        assert np.array_equal(a, b)

    def test_tree_partition_quality(self, cls):
        g = CSRGraph.from_tdg(binary_in_tree(7))
        res = cls().partition(g, 4, seed=0)
        # A reduction tree of 255 nodes can be 4-way cut with few edges.
        assert edge_cut(g, res.parts) <= 30

    def test_random_layered_reasonable(self, cls):
        g = CSRGraph.from_tdg(random_layered(12, 24, seed=5))
        res = cls().partition(g, 8, seed=0)
        rand = RandomPartitioner().partition(g, 8, seed=0)
        assert edge_cut(g, res.parts) < edge_cut(g, rand.parts)


class TestArchitectureAwareness:
    def test_drb_mapping_cost_beats_multilevel(self, grid, target8):
        """On a hierarchical machine DRB should place heavy-edge groups on
        nearby sockets, beating a distance-oblivious partitioner on the
        mapping-cost objective (averaged over seeds)."""
        topo = bullion_s16()
        drb_costs, ml_costs = [], []
        for seed in range(5):
            drb = DualRecursiveBipartitioner().partition(
                grid, 8, target=target8, seed=seed
            )
            ml = MultilevelKWay(arch_refine=False).partition(
                grid, 8, target=target8, seed=seed
            )
            drb_costs.append(mapping_cost(grid, drb.parts, topo.distance))
            ml_costs.append(mapping_cost(grid, ml.parts, topo.distance))
        assert np.mean(drb_costs) <= np.mean(ml_costs) * 1.02

    def test_capacity_respected(self, grid):
        target = TargetArchitecture(
            distance=np.array([[10.0, 20.0], [20.0, 10.0]]),
            capacity=np.array([3.0, 1.0]),
        )
        res = DualRecursiveBipartitioner().partition(grid, 2, target=target, seed=0)
        w = res.part_weights(grid.vwgt)
        assert w[0] > w[1] * 2  # 3:1 capacity split

    def test_target_k_mismatch(self, grid, target8):
        with pytest.raises(PartitionError):
            DualRecursiveBipartitioner().partition(grid, 4, target=target8)

    def test_split_architecture_module_aligned(self):
        topo = bullion_s16()
        half_a, half_b = split_architecture(list(range(8)), topo.distance)
        # Module pairs (0,1), (2,3), (4,5), (6,7) must not be separated.
        for pair in ((0, 1), (2, 3), (4, 5), (6, 7)):
            in_a = sum(s in half_a for s in pair)
            assert in_a in (0, 2), f"module {pair} split across halves"

    def test_split_architecture_two(self):
        topo = bullion_s16()
        assert split_architecture([3, 5], topo.distance) == ([3], [5])

    def test_split_architecture_rejects_singleton(self):
        with pytest.raises(PartitionError):
            split_architecture([1], bullion_s16().distance)


class TestBaselines:
    def test_cyclic_is_cyclic(self, grid):
        res = CyclicPartitioner().partition(grid, 4, seed=0)
        assert list(res.parts[:8]) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_block_is_contiguous(self, grid):
        res = BlockPartitioner().partition(grid, 4, seed=0)
        assert np.all(np.diff(res.parts) >= 0)

    def test_random_is_seeded(self, grid):
        a = RandomPartitioner().partition(grid, 4, seed=5).parts
        b = RandomPartitioner().partition(grid, 4, seed=5).parts
        c = RandomPartitioner().partition(grid, 4, seed=6).parts
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestRegistry:
    def test_all_registered(self):
        assert set(PARTITIONERS) == {
            "drb", "multilevel", "multilevel-kl", "spectral", "exact",
            "random", "cyclic", "block",
        }

    def test_by_name(self):
        assert isinstance(by_name("drb"), DualRecursiveBipartitioner)

    def test_unknown(self):
        with pytest.raises(KeyError):
            by_name("metis")
