"""HTTP layer: routes, status-code contract, backpressure headers.

Runs an in-process :class:`HttpServer` on an ephemeral port and talks to
it with the async client — no subprocesses, so these stay fast.
"""

import asyncio

from repro.service import HttpServer, ServiceConfig, SimulationService
from repro.service.client import arequest_json

TINY = {"n_blocks": 6, "block_elems": 1024, "iterations": 2}


def tiny_spec(seed=0, **overrides):
    spec = {"app": "nstream", "policy": "las", "seed": seed,
            "app_params": dict(TINY)}
    spec.update(overrides)
    return spec


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


async def with_server(scenario, **config_overrides):
    defaults = dict(workers=1, queue_capacity=8,
                    retry_base_s=0.02, retry_max_s=0.2)
    defaults.update(config_overrides)
    service = SimulationService(ServiceConfig(**defaults))
    server = HttpServer(service, port=0)
    await server.start()
    try:

        async def call(method, path, body=None):
            return await arequest_json(
                "127.0.0.1", server.port, method, path, body
            )

        call.port = server.port  # for tests that need a raw socket
        return await scenario(call, service)
    finally:
        await server.stop()
        await service.stop()


class TestHealthAndMetrics:
    def test_healthz_readyz_metrics(self):
        async def scenario(call, service):
            health = await call("GET", "/healthz")
            assert health.status == 200 and health.body["healthy"]
            ready = await call("GET", "/readyz")
            assert ready.status == 200 and ready.body["accepting"]
            metrics = await call("GET", "/metrics")
            assert metrics.status == 200
            assert "counters" in metrics.body
            assert metrics.body["queue_capacity"] == 8
            prom = await call("GET", "/metrics?format=prometheus")
            assert prom.status == 200
            assert isinstance(prom.body["prometheus"], str)
            workers = await call("GET", "/v1/workers")
            assert workers.status == 200
            assert len(workers.body["pids"]) == 1
            return True

        assert run(with_server(scenario))

    def test_readyz_503_while_draining(self):
        async def scenario(call, service):
            drain = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.01)
            ready = await call("GET", "/readyz")
            assert ready.status == 503
            submit = await call("POST", "/v1/jobs", tiny_spec())
            assert submit.status == 503
            await drain
            return True

        assert run(with_server(scenario))


class TestJobs:
    def test_submit_wait_status_result(self):
        async def scenario(call, service):
            accepted = await call("POST", "/v1/jobs", tiny_spec(seed=30))
            assert accepted.status == 202
            assert accepted.body["state"] in ("QUEUED", "RUNNING")
            job_id = accepted.body["job_id"]

            done = await call(
                "POST", f"/v1/jobs?wait=1&timeout=60", tiny_spec(seed=30)
            )
            assert done.status == 200
            assert done.body["state"] == "DONE"
            assert done.body["result"]["makespan"] > 0

            status = await call("GET", f"/v1/jobs/{job_id}")
            assert status.status == 200
            assert status.body["state"] == "DONE"

            result = await call(
                "GET", f"/v1/results/{done.body['hash']}"
            )
            assert result.status == 200
            assert result.body["result"] == done.body["result"]
            return True

        assert run(with_server(scenario))

    def test_wait_timeout_answers_202_with_job_id(self):
        async def scenario(call, service):
            response = await call(
                "POST", "/v1/jobs?wait=1&timeout=0.05",
                tiny_spec(seed=31, chaos={"sleep_s": 0.5}),
            )
            assert response.status == 202  # not terminal yet, not an error
            assert response.body["job_id"]
            assert response.body["state"] in ("QUEUED", "RUNNING")
            return True

        assert run(with_server(scenario))


class TestErrorContract:
    def test_bad_spec_400(self):
        async def scenario(call, service):
            bad = await call("POST", "/v1/jobs", {"app": "nope",
                                                  "policy": "las"})
            assert bad.status == 400
            assert "nope" in bad.body["error"]
            unknown_field = await call(
                "POST", "/v1/jobs", dict(tiny_spec(), frobnicate=1)
            )
            assert unknown_field.status == 400
            return True

        assert run(with_server(scenario))

    def test_unknown_job_and_result_404(self):
        async def scenario(call, service):
            assert (await call("GET", "/v1/jobs/j-999")).status == 404
            assert (await call("GET", "/v1/results/feedbeef")).status == 404
            assert (await call("GET", "/v1/frobnicate")).status == 404
            return True

        assert run(with_server(scenario))

    def test_queue_full_429_with_retry_after(self):
        async def scenario(call, service):
            # one slow job runs, one sits in the single queue slot
            await call("POST", "/v1/jobs",
                       tiny_spec(seed=32, chaos={"sleep_s": 0.5}))
            await asyncio.sleep(0.1)  # let the worker take it
            await call("POST", "/v1/jobs", tiny_spec(seed=33))
            shed = await call("POST", "/v1/jobs", tiny_spec(seed=34))
            assert shed.status == 429
            assert shed.retry_after_s is not None
            assert shed.retry_after_s > 0
            assert shed.body["retry_after_s"] > 0
            return True

        assert run(with_server(scenario, queue_capacity=1))

    def test_rate_limited_429(self):
        async def scenario(call, service):
            first = await call("POST", "/v1/jobs", tiny_spec(seed=35))
            assert first.status == 202
            second = await call("POST", "/v1/jobs", tiny_spec(seed=36))
            assert second.status == 429
            assert second.retry_after_s is not None
            return True

        assert run(with_server(scenario, rate_per_s=0.001, burst=1.0))

    def test_malformed_client_input_is_400_not_500(self):
        """Garbage Content-Length / ?timeout= is the client's fault."""

        async def raw(port, request_bytes):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(request_bytes)
            await writer.drain()
            status_line = await reader.readline()
            writer.close()
            return int(status_line.split()[1])

        async def scenario(call, service):
            for bad_length in ("abc", "-5", "1e3"):
                status = await raw(call.port, (
                    "POST /v1/jobs HTTP/1.1\r\n"
                    f"Content-Length: {bad_length}\r\n\r\n"
                ).encode())
                assert status == 400, bad_length
            for bad_timeout in ("abc", "-1", "nan", ""):
                resp = await call(
                    "POST", f"/v1/jobs?wait=1&timeout={bad_timeout}",
                    tiny_spec(seed=38),
                )
                assert resp.status == 400, bad_timeout
                assert "timeout" in resp.body["error"]
            # valid input still works after the rejects
            ok = await call("POST", "/v1/jobs?wait=1&timeout=60",
                            tiny_spec(seed=38))
            assert ok.status == 200
            return True

        assert run(with_server(scenario))

    def test_quarantined_result_409(self):
        async def scenario(call, service):
            done = await call(
                "POST", "/v1/jobs?wait=1&timeout=60",
                tiny_spec(seed=37, chaos={"kill_worker": True}),
            )
            assert done.status == 200
            assert done.body["state"] == "QUARANTINED"
            result = await call("GET", f"/v1/results/{done.body['hash']}")
            assert result.status == 409
            return True

        assert run(with_server(scenario, poison_threshold=1))
