"""Service building blocks: journal, cache, rate limiter, queue."""

import asyncio
import json

import pytest

from repro.errors import QueueFullError, RateLimitError, ServiceError
from repro.service import (
    AdmissionQueue,
    Journal,
    RateLimiter,
    ResultCache,
    TokenBucket,
)


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "submit", "id": "j-1"})
        journal.append({"kind": "done", "id": "j-1"})
        journal.close()
        assert [r["kind"] for r in Journal(tmp_path / "j.jsonl").replay()] \
            == ["submit", "done"]

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert Journal(tmp_path / "nope.jsonl").replay() == []

    def test_torn_final_line_tolerated_and_truncated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"kind": "submit", "id": "j-1"})
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"kind": "done", "id": "j-')  # crash mid-append
        records = Journal(path).replay()
        assert [r["id"] for r in records] == ["j-1"]
        # the torn tail is gone from disk: a fresh append starts clean
        journal = Journal(path)
        journal.append({"kind": "done", "id": "j-1"})
        journal.close()
        assert [r["kind"] for r in Journal(path).replay()] == ["submit", "done"]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "submit"}\ngarbage\n{"kind": "done"}\n')
        with pytest.raises(ServiceError):
            Journal(path).replay()

    def test_replay_while_open_raises(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "submit"})
        with pytest.raises(ServiceError):
            journal.replay()
        journal.close()

    def test_write_behind_same_contents_after_close(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path, write_behind=True)
        for i in range(20):
            journal.append({"kind": "submit", "id": f"j-{i}"})
        with pytest.raises(ServiceError):
            journal.replay()  # still open for writing
        journal.flush()  # durability barrier: everything is on disk now
        assert len(path.read_text().splitlines()) == 20
        journal.close()
        records = Journal(path).replay()
        assert [r["id"] for r in records] == [f"j-{i}" for i in range(20)]


class TestResultCache:
    def test_memory_only(self):
        cache = ResultCache()
        assert cache.get("h") is None
        cache.put("h", {"makespan": 1.0})
        assert cache.get("h") == {"makespan": 1.0}

    def test_disk_tier_survives_new_instance(self, tmp_path):
        ResultCache(tmp_path).put("abc", {"makespan": 2.0})
        again = ResultCache(tmp_path)
        assert again.get("abc") == {"makespan": 2.0}
        assert len(again) == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "bad.json").write_text("{torn")
        assert cache.get("bad") is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("x", {"v": 1})
        assert not list(tmp_path.glob("*.tmp"))

    def test_write_behind_durable_after_close(self, tmp_path):
        cache = ResultCache(tmp_path, write_behind=True)
        cache.put("wb", {"makespan": 3.0})
        assert cache.get("wb") == {"makespan": 3.0}  # memory tier immediate
        cache.close()  # durability barrier
        assert ResultCache(tmp_path).get("wb") == {"makespan": 3.0}


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate_per_s=2.0, burst=2.0,
                             clock=lambda: clock[0])
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()
        assert bucket.time_until() == pytest.approx(0.5)
        clock[0] = 0.5
        assert bucket.try_take()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0)


class TestRateLimiter:
    def test_disabled_by_default(self):
        limiter = RateLimiter(0.0)
        for _ in range(1000):
            limiter.check("anyone")  # never raises

    def test_per_tenant_isolation(self):
        clock = [0.0]
        limiter = RateLimiter(1.0, burst=1.0, clock=lambda: clock[0])
        limiter.check("alice")
        with pytest.raises(RateLimitError) as info:
            limiter.check("alice")
        assert info.value.retry_after_s > 0
        limiter.check("bob")  # bob has his own bucket


class TestAdmissionQueue:
    def test_bounded_put_raises_with_retry_after(self):
        queue = AdmissionQueue(2)
        queue.put_nowait("a")
        queue.put_nowait("b")
        with pytest.raises(QueueFullError) as info:
            queue.put_nowait("c")
        assert info.value.retry_after_s > 0
        assert queue.depth == 2

    def test_retry_after_scales_with_service_rate(self):
        queue = AdmissionQueue(10)
        queue.service_rate_hint = 100.0
        for i in range(10):
            queue.put_nowait(i)
        with pytest.raises(QueueFullError) as info:
            queue.put_nowait("x")
        assert info.value.retry_after_s == pytest.approx(0.1, abs=0.05)

    def test_async_get_fifo_and_front(self):
        async def scenario():
            queue = AdmissionQueue(4)
            queue.put_nowait("a")
            queue.put_nowait("b")
            queue.put_nowait("retry", front=True)
            return [await queue.get() for _ in range(3)]

        assert asyncio.run(scenario()) == ["retry", "a", "b"]

    def test_get_waits_for_put(self):
        async def scenario():
            queue = AdmissionQueue(4)

            async def producer():
                await asyncio.sleep(0.02)
                queue.put_nowait("late")

            task = asyncio.ensure_future(producer())
            item = await asyncio.wait_for(queue.get(), timeout=2.0)
            await task
            return item

        assert asyncio.run(scenario()) == "late"

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


class TestPrometheusRender:
    def test_counters_gauges_histograms(self):
        from repro.observability import MetricsRegistry, render_prometheus

        registry = MetricsRegistry()
        registry.counter("service.jobs.done").inc(3)
        registry.gauge("service.queue.depth").set(1.0, 7)
        hist = registry.histogram("latency", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = render_prometheus(registry)
        assert "# TYPE service_jobs_done counter" in text
        assert "service_jobs_done 3" in text
        assert "service_queue_depth 7" in text
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="+Inf"} 2' in text
        assert "latency_count 2" in text

    def test_empty_registry(self):
        from repro.observability import MetricsRegistry, render_prometheus

        assert render_prometheus(MetricsRegistry()) == ""
