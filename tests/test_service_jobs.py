"""Job spec model: validation, canonical hashing, normalisation."""

import pytest

from repro.errors import JobSpecError
from repro.service import JobSpec, JobState

TINY = {"n_blocks": 6, "block_elems": 1024, "iterations": 2}


def spec(**overrides):
    base = dict(app="nstream", policy="las", seed=1, app_params=dict(TINY))
    base.update(overrides)
    return JobSpec.from_dict(base)


class TestValidation:
    def test_valid_spec_passes(self):
        assert spec().validated().app == "nstream"

    @pytest.mark.parametrize("field,value", [
        ("app", "nope"),
        ("policy", "nope"),
        ("machine", "nope"),
        ("seed", "zero"),
        ("seed", True),
        ("deadline_s", -1.0),
        ("chaos", {"explode": True}),
        ("faults", {"core_faults": "garbage"}),
    ])
    def test_bad_fields_rejected(self, field, value):
        with pytest.raises(JobSpecError):
            spec(**{field: value}).validated()

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict({"app": "nstream", "policy": "las",
                               "frobnicate": 1})

    def test_missing_required_field_rejected(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict({"app": "nstream"})

    def test_non_dict_rejected(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict(["app"])

    def test_empty_app_params_filled_with_defaults(self):
        normalized = spec(app_params={}).validated()
        assert normalized.app_params  # quick defaults filled in
        # and the fill happens before hashing: explicit-default == empty
        explicit = JobSpec.from_dict({
            "app": "nstream", "policy": "las", "seed": 1,
            "app_params": dict(normalized.app_params),
        }).validated()
        assert explicit.content_hash() == normalized.content_hash()


class TestContentHash:
    def test_deterministic(self):
        assert spec().content_hash() == spec().content_hash()

    def test_sensitive_to_result_fields(self):
        base = spec().validated().content_hash()
        assert spec(seed=2).validated().content_hash() != base
        assert spec(policy="dfifo").validated().content_hash() != base
        assert spec(machine="four-socket").validated().content_hash() != base
        assert (
            spec(app_params=dict(TINY, iterations=3)).validated().content_hash()
            != base
        )

    def test_tenant_and_deadline_not_hashed(self):
        base = spec().validated().content_hash()
        assert spec(tenant="alice").validated().content_hash() == base
        assert spec(deadline_s=5.0).validated().content_hash() == base

    def test_key_order_irrelevant(self):
        a = JobSpec.from_dict({"app": "nstream", "policy": "las",
                               "seed": 1, "app_params": dict(TINY)})
        b = JobSpec.from_dict({"app_params": dict(TINY), "seed": 1,
                               "policy": "las", "app": "nstream"})
        assert a.content_hash() == b.content_hash()


class TestStateMachine:
    def test_terminal_states(self):
        assert JobState.DONE in JobState.TERMINAL
        assert JobState.FAILED in JobState.TERMINAL
        assert JobState.QUARANTINED in JobState.TERMINAL
        assert JobState.SHED in JobState.TERMINAL
        for live in (JobState.QUEUED, JobState.RUNNING, JobState.RETRYING):
            assert live not in JobState.TERMINAL
