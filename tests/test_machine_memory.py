"""Unit tests for the page-granularity memory manager."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.machine import UNBOUND, MemoryManager


@pytest.fixture
def mm():
    return MemoryManager(n_nodes=4, page_size=4096)


class TestRegistration:
    def test_register_and_size(self, mm):
        mm.register(0, 10000)
        assert mm.is_registered(0)
        assert mm.size_of(0) == 10000

    def test_pages_rounded_up(self, mm):
        mm.register(0, 4097)
        assert len(mm.page_nodes(0)) == 2

    def test_double_register_rejected(self, mm):
        mm.register(0, 100)
        with pytest.raises(MemoryError_):
            mm.register(0, 100)

    def test_zero_size_rejected(self, mm):
        with pytest.raises(MemoryError_):
            mm.register(0, 0)

    def test_unknown_object(self, mm):
        with pytest.raises(MemoryError_):
            mm.touch(5, 0)

    def test_bad_node_count(self):
        with pytest.raises(MemoryError_):
            MemoryManager(0)


class TestFirstTouch:
    def test_touch_binds_unbound_pages(self, mm):
        mm.register(0, 8192)
        n = mm.touch(0, 2)
        assert n == 2
        assert np.all(mm.page_nodes(0) == 2)

    def test_first_touch_wins(self, mm):
        mm.register(0, 8192)
        mm.touch(0, 2)
        n = mm.touch(0, 3)  # second touch must not move pages
        assert n == 0
        assert np.all(mm.page_nodes(0) == 2)

    def test_partial_range_touch(self, mm):
        mm.register(0, 16384)  # 4 pages
        mm.touch(0, 1, offset=0, length=4096)
        pages = mm.page_nodes(0)
        assert pages[0] == 1
        assert np.all(pages[1:] == UNBOUND)

    def test_range_spanning_partial_pages(self, mm):
        mm.register(0, 16384)
        # Bytes 2000..6000 span pages 0 and 1.
        n = mm.touch(0, 3, offset=2000, length=4000)
        assert n == 2
        assert list(mm.page_nodes(0)[:2]) == [3, 3]

    def test_bytes_accounting(self, mm):
        mm.register(0, 8192)
        mm.touch(0, 1)
        assert mm.bytes_on_node[1] == 8192
        assert mm.touch_count == 2

    def test_out_of_range_rejected(self, mm):
        mm.register(0, 4096)
        with pytest.raises(MemoryError_):
            mm.touch(0, 0, offset=0, length=5000)

    def test_bad_node_rejected(self, mm):
        mm.register(0, 4096)
        with pytest.raises(MemoryError_):
            mm.touch(0, 4)

    def test_zero_length_touch(self, mm):
        mm.register(0, 4096)
        assert mm.touch(0, 0, offset=0, length=0) == 0


class TestExplicitPlacement:
    def test_bind_moves_pages(self, mm):
        mm.register(0, 8192)
        mm.touch(0, 1)
        mm.bind(0, 2)
        assert np.all(mm.page_nodes(0) == 2)
        assert mm.bytes_on_node[1] == 0
        assert mm.bytes_on_node[2] == 8192
        assert mm.migrated_pages == 2

    def test_migrate_only_bound(self, mm):
        mm.register(0, 16384)
        mm.touch(0, 0, offset=0, length=8192)
        moved = mm.migrate(0, 3)
        assert moved == 2
        pages = mm.page_nodes(0)
        assert list(pages[:2]) == [3, 3]
        assert np.all(pages[2:] == UNBOUND)

    def test_migrate_noop_when_already_there(self, mm):
        mm.register(0, 4096)
        mm.touch(0, 3)
        assert mm.migrate(0, 3) == 0

    def test_interleave_round_robin(self, mm):
        mm.register(0, 4096 * 8)
        mm.interleave(0, [0, 1])
        pages = mm.page_nodes(0)
        assert list(pages) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_interleave_all_nodes_default(self, mm):
        mm.register(0, 4096 * 4)
        mm.interleave(0)
        assert sorted(mm.page_nodes(0)) == [0, 1, 2, 3]

    def test_interleave_empty_nodes_rejected(self, mm):
        mm.register(0, 4096)
        with pytest.raises(MemoryError_):
            mm.interleave(0, [])


class TestPlacementQueries:
    def test_node_bytes_full_object(self, mm):
        mm.register(0, 12000)
        mm.touch(0, 1)
        pl = mm.node_bytes_of_range(0)
        assert pl.bytes_per_node[1] == 12000
        assert pl.unbound_bytes == 0
        assert pl.dominant_node() == 1

    def test_node_bytes_sum_to_length(self, mm):
        mm.register(0, 20000)
        mm.touch(0, 0, offset=0, length=10000)
        pl = mm.node_bytes_of_range(0, offset=5000, length=9000)
        assert pl.bytes_per_node.sum() + pl.unbound_bytes == 9000

    def test_partial_page_attribution(self, mm):
        mm.register(0, 8192)
        mm.touch(0, 2)
        pl = mm.node_bytes_of_range(0, offset=100, length=200)
        assert pl.bytes_per_node[2] == 200

    def test_dominant_node_none_when_unbound(self, mm):
        mm.register(0, 4096)
        pl = mm.node_bytes_of_range(0)
        assert pl.dominant_node() is None
        assert pl.unbound_bytes == 4096

    def test_mixed_placement(self, mm):
        mm.register(0, 8192)
        mm.touch(0, 0, offset=0, length=4096)
        mm.touch(0, 3, offset=4096, length=4096)
        pl = mm.node_bytes_of_range(0)
        assert pl.bytes_per_node[0] == 4096
        assert pl.bytes_per_node[3] == 4096

    def test_fraction_bound(self, mm):
        mm.register(0, 16384)
        assert mm.fraction_bound(0) == 0.0
        mm.touch(0, 1, offset=0, length=8192)
        assert mm.fraction_bound(0) == pytest.approx(0.5)

    def test_page_nodes_read_only(self, mm):
        mm.register(0, 4096)
        with pytest.raises(ValueError):
            mm.page_nodes(0)[0] = 1


class TestReset:
    def test_reset_placement(self, mm):
        mm.register(0, 8192)
        mm.touch(0, 1)
        mm.reset_placement()
        assert np.all(mm.page_nodes(0) == UNBOUND)
        assert mm.bytes_on_node.sum() == 0
        assert mm.touch_count == 0
        assert mm.is_registered(0)  # registry survives
