"""Unit tests for speedup tables and the geometric mean."""

import pytest

from repro.errors import ExperimentError
from repro.metrics import SpeedupCell, SpeedupTable, geometric_mean


class TestGeometricMean:
    def test_identity(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_classic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_paper_value(self):
        # Mix straddling 1.0 like Figure 1's RGP+LAS bars.
        vals = [1.26, 1.0, 1.0, 1.26, 1.7, 0.9, 1.07, 0.95]
        assert geometric_mean(vals) == pytest.approx(1.12, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ExperimentError):
            geometric_mean([1.0, 0.0])


def cell(speedup):
    return SpeedupCell(speedup=speedup, speedup_std=0.01,
                       makespan_mean=1.0, remote_fraction=0.1)


class TestSpeedupTable:
    def make(self):
        t = SpeedupTable(baseline="las", policies=["dfifo", "ep"])
        t.add("jacobi", "dfifo", cell(0.42))
        t.add("jacobi", "ep", cell(1.2))
        t.add("nstream", "dfifo", cell(0.49))
        t.add("nstream", "ep", cell(1.75))
        return t

    def test_lookup(self):
        t = self.make()
        assert t.speedup("jacobi", "dfifo") == 0.42

    def test_missing_lookup(self):
        with pytest.raises(ExperimentError):
            self.make().speedup("qr", "ep")

    def test_geomean_per_policy(self):
        t = self.make()
        assert t.geomean("ep") == pytest.approx((1.2 * 1.75) ** 0.5)

    def test_rows_include_geomean(self):
        rows = self.make().rows()
        assert rows[-1][0] == "geomean"
        assert len(rows) == 3

    def test_render_contains_apps_and_policies(self):
        text = self.make().render(title="Fig")
        assert "Fig" in text
        assert "jacobi" in text and "nstream" in text
        assert "dfifo" in text and "ep" in text
        assert "0.42" in text and "1.75" in text

    def test_missing_cells_render_dash(self):
        t = SpeedupTable(baseline="las", policies=["dfifo"])
        t.add("qr", "dfifo", cell(1.0))
        t.apps.append("extra")
        assert "-" in t.render()
