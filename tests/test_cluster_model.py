"""Cluster machine model: messages, NIC contention, per-box faults, remap.

Covers the distributed machine model (DESIGN.md §15): explicit inter-box
message events and the per-link traffic matrix, NIC bandwidth contention,
the ``NodeLoss`` / ``NetworkDegradation`` fault families, the nearest
-surviving-socket placement remap (the box-aware bugfix: orphaned
placements must go to the *sibling* socket before anything across the
network, and equidistant survivors are spread by load), the end-of-run
in-flight-message drain check, and the ``mem_network`` critical-path
component.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import make_app
from repro.errors import SimulationError
from repro.faults import FaultPlan, NetworkDegradation, NodeLoss
from repro.machine import Interconnect, cluster, two_socket
from repro.profiling import profile_run
from repro.runtime import Message, Simulator, TaskProgram
from repro.runtime.validation import validate_schedule
from repro.schedulers import make_scheduler


def cross_box_program(nbytes: int = 1 << 20) -> TaskProgram:
    """Producers pinned to box 0, a consumer pinned to box 1 (EP hints).

    On ``cluster(2)`` (sockets 0/1 in box 0, 2/3 in box 1) the consumer's
    read of ``a`` crosses the network; its read of ``b`` stays inside
    box 1 (plain NUMA-remote traffic, not a message).
    """
    p = TaskProgram("xbox")
    a = p.data("a", nbytes)
    b = p.data("b", nbytes)
    p.task("init_a", outs=[a], work=0.2, meta={"ep_socket": 0})
    p.task("init_b", outs=[b], work=0.2, meta={"ep_socket": 2})
    p.task("consume", ins=[a, b], work=0.2, meta={"ep_socket": 3})
    return p.finalize()


def run(prog, topo, policy="ep", faults=None, seed=0, **kw):
    sim = Simulator(
        prog, topo, make_scheduler(policy), seed=seed, faults=faults, **kw
    )
    return sim.run()


class TestMessageEvents:
    def test_cross_box_read_produces_messages(self):
        topo = cluster(2)
        res = run(cross_box_program(), topo)
        assert res.messages, "cross-box read must be recorded as a message"
        for msg in res.messages:
            assert isinstance(msg, Message)
            assert msg.src_box != msg.dst_box
            assert msg.nbytes > 0
            assert msg.send <= msg.recv <= res.makespan + 1e-9
        # Receive-ordered, and consistent with the link matrix.
        recvs = [m.recv for m in res.messages]
        assert recvs == sorted(recvs)
        assert res.bytes_by_link is not None
        assert res.bytes_by_link.shape == (2, 2)
        assert np.all(np.diag(res.bytes_by_link) == 0.0)
        by_link = np.zeros((2, 2))
        for m in res.messages:
            by_link[m.src_box, m.dst_box] += m.nbytes
        assert np.allclose(by_link, res.bytes_by_link)
        assert res.net_bytes > 0
        # a crossed the network; b stayed in box 1.
        assert res.bytes_by_link[0, 1] >= 1 << 20

    def test_single_box_run_has_no_messages(self):
        p = TaskProgram("local")
        a = p.data("a", 1 << 20)
        p.task("init", outs=[a], work=0.2)
        p.task("use", ins=[a], work=0.2)
        res = run(p.finalize(), two_socket(), policy="las")
        assert res.messages == []
        assert res.bytes_by_link is None
        assert res.net_bytes == 0.0

    def test_smaller_nic_stretches_cross_box_transfers(self):
        prog = cross_box_program()
        fast = run(prog, cluster(2, nic_fraction=0.25))
        slow = run(prog, cluster(2, nic_fraction=0.02))
        assert slow.makespan > fast.makespan


class TestClusterFaults:
    def test_node_loss_remaps_to_surviving_box(self):
        topo = cluster(2)
        prog = cross_box_program()
        plan = FaultPlan(node_losses=(NodeLoss(box=1, at=0.05),))
        res = run(prog, topo, faults=plan, max_retries=10)
        assert res.n_tasks == prog.n_tasks
        assert res.cores_failed == topo.sockets_per_box * topo.cores_per_socket
        validate_schedule(prog, res, topo)
        lost = set(topo.sockets_of_box(1))
        for rec in res.records:
            if rec.start >= 0.05:
                assert rec.socket not in lost

    def test_transient_node_loss_recovers(self):
        topo = cluster(2)
        prog = cross_box_program()
        plan = FaultPlan(
            node_losses=(NodeLoss(box=0, at=0.05, duration=0.2),)
        )
        res = run(prog, topo, faults=plan, max_retries=10)
        assert res.n_tasks == prog.n_tasks
        validate_schedule(prog, res, topo)

    def test_network_degradation_never_speeds_up(self):
        prog = cross_box_program()
        topo = cluster(2)
        base = run(prog, topo)
        plan = FaultPlan(
            network_degradations=(
                NetworkDegradation(box=0, at=0.0, factor=0.2),
            )
        )
        degraded = run(prog, topo, faults=plan)
        assert degraded.makespan > base.makespan  # box 0 feeds the consumer


class TestNearestSurvivorRemap:
    """The placement/remap bugfix: dead-socket placements must go to the
    closest surviving socket by SLIT distance (the sibling socket of the
    same box beats anything across the network), equidistant survivors
    spread by load instead of funnelling onto the lowest id."""

    def _sim(self, topo):
        return Simulator(cross_box_program(), topo, make_scheduler("ep"))

    def test_sibling_socket_beats_network(self):
        topo = cluster(2)
        sim = self._sim(topo)
        for core in topo.cores_of_socket(0):
            sim.quarantined.add(core)
        # Socket 1 (distance 16) must win over box-1 sockets (distance 60).
        assert sim.nearest_alive_socket(0) == 1

    def test_whole_box_loss_spreads_ties_by_load(self):
        topo = cluster(3)  # boxes: {0,1}, {2,3}, {4,5}
        sim = self._sim(topo)
        for s in topo.sockets_of_box(0):
            for core in topo.cores_of_socket(s):
                sim.quarantined.add(core)
        # All four survivors are equidistant (network tier); unloaded,
        # the lowest id wins.
        assert sim.nearest_alive_socket(0) == 2
        # Load socket 2's queue and the remap must pick an idle sibling.
        sim.socket_queues[2].extend(sim.program.tasks[:2])
        assert sim.nearest_alive_socket(0) == 3

    def test_remap_goes_through_distance_not_modulo(self):
        # Regression shape: with socket 2 dead on a 2-box cluster the old
        # wrap-around remap would pick socket 3's *box-0* neighbour by id
        # arithmetic; distance says the sibling socket 3 must win.
        topo = cluster(2)
        sim = self._sim(topo)
        for core in topo.cores_of_socket(2):
            sim.quarantined.add(core)
        assert sim.nearest_alive_socket(2) == 3


class TestDrainValidation:
    def test_leaked_in_flight_message_detected(self):
        topo = cluster(2)
        prog = cross_box_program()
        sim = Simulator(prog, topo, make_scheduler("ep"))
        res = sim.run()
        validate_schedule(prog, res, topo, simulator=sim)  # clean
        sim._msgs_in_flight = {5: [object()]}
        with pytest.raises(SimulationError, match="in-flight messages"):
            validate_schedule(prog, res, topo, simulator=sim)


class TestNetworkAttribution:
    def test_mem_network_component_on_cluster_run(self):
        topo = cluster(2)
        prog = make_app("jacobi", nt=4, tile=64, sweeps=2).build(
            topo.n_sockets
        )
        interconnect = Interconnect(topo)
        sim = Simulator(
            prog, topo, make_scheduler("ep"), interconnect=interconnect
        )
        res = sim.run()
        report = profile_run(prog, res, topo, interconnect=interconnect)
        assert "mem_network" in report.totals
        assert report.component_sum() == pytest.approx(
            report.makespan, abs=1e-9
        )
        totals = report.machine_totals()
        assert totals["mem_network"] > 0.0

    def test_mem_network_zero_on_single_box(self):
        topo = two_socket()
        prog = make_app("jacobi", nt=4, tile=64, sweeps=2).build(
            topo.n_sockets
        )
        interconnect = Interconnect(topo)
        sim = Simulator(
            prog, topo, make_scheduler("las"), interconnect=interconnect
        )
        res = sim.run()
        report = profile_run(prog, res, topo, interconnect=interconnect)
        assert report.totals["mem_network"] == 0.0
        assert report.machine_totals()["mem_network"] == 0.0


class TestClusterCLI:
    def test_run_cluster_flag(self, capsys):
        from repro.cli import main

        rc = main([
            "run", "--app", "jacobi", "--scheduler", "las",
            "--cluster", "2", "--quick",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cluster2" in out
        assert "msgs=" in out

    @pytest.mark.parametrize("n_boxes", ["0", "-2"])
    def test_run_cluster_flag_rejects_bad_sizes(self, capsys, n_boxes):
        # --cluster 0 must not silently fall back to --machine, and a
        # negative count must surface as a config error (exit 2), not a
        # raw numpy ValueError.
        from repro.cli import main

        rc = main([
            "run", "--app", "jacobi", "--scheduler", "las",
            "--cluster", n_boxes, "--quick",
        ])
        err = capsys.readouterr().err
        assert rc == 2
        assert "at least one box" in err
