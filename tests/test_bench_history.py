"""Perf-regression observatory: history, compare, CLI exit codes.

Acceptance (ISSUE PR 7): ``repro bench --compare`` exits non-zero on an
injected synthetic regression and zero when comparing identical runs.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    append_history,
    compare_bench_files,
    derive_metrics,
    load_bench_file,
    load_history,
)
from repro.cli import main
from repro.errors import EXIT_BENCHMARK, BenchmarkError

HOTPATH_ENTRIES = [
    {"name": "decision/stencil-1000/uncached", "n_tasks": 1000,
     "policy": "rgp+las", "wall_s": 2.0, "decisions_per_s": 500.0},
    {"name": "decision/stencil-1000/cached", "n_tasks": 1000,
     "policy": "rgp+las", "wall_s": 0.5, "decisions_per_s": 2000.0},
    {"name": "e2e/stencil-1000/las/uncached", "n_tasks": 1000,
     "policy": "las", "wall_s": 3.0, "decisions_per_s": 333.0},
    {"name": "e2e/stencil-1000/las/cached", "n_tasks": 1000,
     "policy": "las", "wall_s": 2.0, "decisions_per_s": 500.0},
]

SERVICE_ENTRIES = [
    {"name": "service/cold", "jobs": 10, "jobs_per_s": 2.0, "p50_ms": 100.0,
     "p99_ms": 400.0, "cache_hit_rate": 0.0, "wall_s": 5.0},
    {"name": "service/warm", "jobs": 10, "jobs_per_s": 40.0, "p50_ms": 5.0,
     "p99_ms": 20.0, "cache_hit_rate": 1.0, "wall_s": 0.25},
    {"name": "service/restart-recall", "jobs": 10, "jobs_per_s": 30.0,
     "p50_ms": 6.0, "p99_ms": 25.0, "cache_hit_rate": 1.0, "wall_s": 0.33,
     "lost_results": 0},
]


def _write(tmp_path, name, entries):
    path = tmp_path / name
    path.write_text(json.dumps(entries))
    return str(path)


# ---------------------------------------------------------------------------
# Loading / kind detection.


def test_load_bench_file_detects_kinds(tmp_path):
    hot = _write(tmp_path, "hot.json", HOTPATH_ENTRIES)
    svc = _write(tmp_path, "svc.json", SERVICE_ENTRIES)
    assert load_bench_file(hot)[0] == "hotpath"
    assert load_bench_file(svc)[0] == "service"


def test_load_bench_file_rejects_garbage(tmp_path):
    with pytest.raises(BenchmarkError, match="cannot read"):
        load_bench_file(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(BenchmarkError, match="not valid JSON"):
        load_bench_file(bad)
    empty = tmp_path / "empty.json"
    empty.write_text("[]")
    with pytest.raises(BenchmarkError, match="non-empty"):
        load_bench_file(empty)
    alien = tmp_path / "alien.json"
    alien.write_text('[{"weird": 1}]')
    with pytest.raises(BenchmarkError, match="cannot detect"):
        load_bench_file(alien)


def test_derive_ratio_metrics():
    metrics = derive_metrics("hotpath", HOTPATH_ENTRIES)
    assert metrics["decision-speedup/stencil-1000"].value == pytest.approx(4.0)
    assert metrics["e2e-speedup/stencil-1000/las"].value == pytest.approx(1.5)
    svc = derive_metrics("service", SERVICE_ENTRIES)
    assert svc["service/warm-speedup"].value == pytest.approx(20.0)
    assert svc["service/warm-hit-rate"].value == 1.0
    assert svc["service/restart-recall/lost-results"].value == 0.0
    with pytest.raises(BenchmarkError, match="unknown bench kind"):
        derive_metrics("nonsense", [])


# ---------------------------------------------------------------------------
# Comparison semantics.


def test_compare_identical_passes(tmp_path):
    path = _write(tmp_path, "a.json", HOTPATH_ENTRIES)
    report = compare_bench_files(path, path)
    assert report.ok
    assert not report.regressions
    assert "PASS" in report.render()


def test_compare_flags_regression_beyond_tolerance(tmp_path):
    base = _write(tmp_path, "base.json", HOTPATH_ENTRIES)
    worse = json.loads(json.dumps(HOTPATH_ENTRIES))
    worse[1]["decisions_per_s"] /= 10.0  # cached decision rate collapses
    cur = _write(tmp_path, "cur.json", worse)
    report = compare_bench_files(base, cur, tolerance=0.3)
    assert not report.ok
    names = [r.name for r in report.regressions]
    assert names == ["decision-speedup/stencil-1000"]
    assert "FAIL" in report.render()


def test_compare_within_tolerance_is_noise(tmp_path):
    base = _write(tmp_path, "base.json", HOTPATH_ENTRIES)
    wobble = json.loads(json.dumps(HOTPATH_ENTRIES))
    for entry in wobble:
        entry["decisions_per_s"] *= 0.85  # -15%: inside the 30% band
    cur = _write(tmp_path, "cur.json", wobble)
    assert compare_bench_files(base, cur).ok


def test_compare_lower_better_zero_baseline(tmp_path):
    base = _write(tmp_path, "base.json", SERVICE_ENTRIES)
    worse = json.loads(json.dumps(SERVICE_ENTRIES))
    worse[2]["lost_results"] = 2  # any loss against a zero baseline fails
    cur = _write(tmp_path, "cur.json", worse)
    report = compare_bench_files(base, cur)
    assert [r.name for r in report.regressions] == [
        "service/restart-recall/lost-results"
    ]


def test_compare_absolute_mode(tmp_path):
    base = _write(tmp_path, "base.json", HOTPATH_ENTRIES)
    worse = json.loads(json.dumps(HOTPATH_ENTRIES))
    for entry in worse:
        entry["decisions_per_s"] /= 4.0  # uniform slowdown: ratios hide it
    cur = _write(tmp_path, "cur.json", worse)
    assert compare_bench_files(base, cur).ok  # ratio mode: no change
    report = compare_bench_files(base, cur, absolute=True)
    assert not report.ok  # absolute mode: -75% everywhere


def test_compare_rejects_kind_mismatch(tmp_path):
    hot = _write(tmp_path, "hot.json", HOTPATH_ENTRIES)
    svc = _write(tmp_path, "svc.json", SERVICE_ENTRIES)
    with pytest.raises(BenchmarkError, match="cannot compare"):
        compare_bench_files(hot, svc)


def test_compare_surfaces_coverage_changes(tmp_path):
    base = _write(tmp_path, "base.json", HOTPATH_ENTRIES)
    cur = _write(tmp_path, "cur.json", HOTPATH_ENTRIES[:2])
    report = compare_bench_files(base, cur)
    assert report.ok  # missing metrics are surfaced, not failed
    assert "e2e-speedup/stencil-1000/las" in report.only_baseline
    assert "missing from current" in report.render()


def test_compare_report_json_safe(tmp_path):
    path = _write(tmp_path, "a.json", HOTPATH_ENTRIES)
    json.dumps(compare_bench_files(path, path).to_dict())


# ---------------------------------------------------------------------------
# History (append-only JSONL).


def test_history_append_and_load(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    append_history(path, "hotpath", HOTPATH_ENTRIES,
                   headline={"decision_speedup": 4.0}, written_at=100.0)
    append_history(path, "service", SERVICE_ENTRIES, written_at=200.0)
    records = load_history(path)
    assert [r["kind"] for r in records] == ["hotpath", "service"]
    assert records[0]["written_at"] == 100.0
    assert records[0]["headline"] == {"decision_speedup": 4.0}
    assert records[0]["metrics"]["decision-speedup/stencil-1000"] == (
        pytest.approx(4.0)
    )
    assert records[0]["entries"] == HOTPATH_ENTRIES
    # Append-only: a third run extends the file without rewriting it.
    before = path.read_text()
    append_history(path, "hotpath", HOTPATH_ENTRIES, written_at=300.0)
    assert path.read_text().startswith(before)
    assert len(load_history(path)) == 3


def test_history_load_rejects_garbage(tmp_path):
    path = tmp_path / "h.jsonl"
    path.write_text('{"kind": "hotpath"}\nnot json\n')
    with pytest.raises(BenchmarkError, match="line 2"):
        load_history(path)
    path.write_text("[1,2]\n")
    with pytest.raises(BenchmarkError, match="malformed record"):
        load_history(path)


# ---------------------------------------------------------------------------
# CLI acceptance: exit 0 on identical, exit 6 on synthetic regression.


def test_cli_compare_identical_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "a.json", HOTPATH_ENTRIES)
    code = main(["bench", "--compare", path, "--against", path])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_cli_compare_regression_exits_six(tmp_path, capsys):
    base = _write(tmp_path, "base.json", HOTPATH_ENTRIES)
    worse = json.loads(json.dumps(HOTPATH_ENTRIES))
    worse[1]["decisions_per_s"] /= 10.0
    cur = _write(tmp_path, "cur.json", worse)
    code = main(["bench", "--compare", base, "--against", cur])
    assert code == EXIT_BENCHMARK == 6
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    assert "regression" in captured.err


def test_cli_compare_unreadable_baseline_exits_six(tmp_path):
    path = _write(tmp_path, "a.json", HOTPATH_ENTRIES)
    code = main(["bench", "--compare", str(tmp_path / "nope.json"),
                 "--against", path])
    assert code == EXIT_BENCHMARK


# ---------------------------------------------------------------------------
# e2e engine-bench kind (PR 8).

E2E_ENTRIES = [
    {"name": "e2e/stencil-10092/rgp+las/before", "n_tasks": 10092,
     "policy": "rgp+las", "engine": "before", "wall_s": 8.0,
     "tasks_per_s": 1261.5},
    {"name": "e2e/stencil-10092/rgp+las/object", "n_tasks": 10092,
     "policy": "rgp+las", "engine": "object", "wall_s": 2.0,
     "tasks_per_s": 5046.0, "makespan": 456.4},
    {"name": "e2e/stencil-10092/rgp+las/flat", "n_tasks": 10092,
     "policy": "rgp+las", "engine": "flat", "wall_s": 1.6,
     "tasks_per_s": 6307.5, "makespan": 456.4},
]


def test_load_bench_file_detects_e2e_kind(tmp_path):
    path = _write(tmp_path, "e2e.json", E2E_ENTRIES)
    kind, entries = load_bench_file(path)
    assert kind == "e2e"
    assert len(entries) == 3


def test_e2e_ratio_metrics_exclude_frozen_before_rows():
    metrics = derive_metrics("e2e", E2E_ENTRIES)
    # object/flat wall ratio only; the frozen 'before' wall (another
    # machine, another commit) must not leak into the CI-gated ratios.
    assert set(metrics) == {"engine-speedup/stencil-10092/rgp+las"}
    assert metrics["engine-speedup/stencil-10092/rgp+las"].value == 2.0 / 1.6


def test_e2e_absolute_metrics_exclude_before_rows():
    metrics = derive_metrics("e2e", E2E_ENTRIES, absolute=True)
    assert set(metrics) == {
        "e2e/stencil-10092/rgp+las/object",
        "e2e/stencil-10092/rgp+las/flat",
    }


def test_e2e_headline_prefers_rgp_las():
    from repro.bench import headline_e2e_speedup

    assert headline_e2e_speedup(E2E_ENTRIES) == 8.0 / 1.6


def test_e2e_schema_rejects_unknown_engine(tmp_path):
    from repro.bench import validate_e2e_entries

    bad = json.loads(json.dumps(E2E_ENTRIES))
    bad[0]["engine"] = "turbo"
    with pytest.raises(BenchmarkError, match="unknown engine"):
        validate_e2e_entries(bad)


def test_cli_compare_e2e_regression_exits_six(tmp_path, capsys):
    base = _write(tmp_path, "base.json", E2E_ENTRIES)
    worse = json.loads(json.dumps(E2E_ENTRIES))
    worse[2]["wall_s"] = 4.0  # flat engine got 2.5x slower than object
    cur = _write(tmp_path, "cur.json", worse)
    code = main(["bench", "--compare", base, "--against", cur])
    assert code == EXIT_BENCHMARK == 6
    assert "FAIL" in capsys.readouterr().out


def test_committed_e2e_baseline_is_valid():
    """The committed BENCH_e2e.json must parse, validate, and carry the
    headline >= 5x before/flat speedup at the 10k-task scenario."""
    import os

    from repro.bench import headline_e2e_speedup

    path = os.path.join(os.path.dirname(__file__), "..", "BENCH_e2e.json")
    kind, entries = load_bench_file(path)
    assert kind == "e2e"
    speedup = headline_e2e_speedup(entries)
    assert speedup is not None and speedup >= 5.0
