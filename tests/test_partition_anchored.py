"""Tests for fixed-vertex (anchored) partitioning."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import CSRGraph, grid_graph
from repro.machine import bullion_s16
from repro.partition import (
    DualRecursiveBipartitioner,
    TargetArchitecture,
    edge_cut,
    partition_with_anchors,
)


@pytest.fixture(scope="module")
def grid():
    return CSRGraph.from_tdg(grid_graph(10, 10))


@pytest.fixture(scope="module")
def target():
    return TargetArchitecture.from_topology(bullion_s16())


class TestAnchors:
    def test_anchors_never_move(self, grid, target):
        anchors = {0: 3, 99: 5, 50: 0}
        res = partition_with_anchors(
            grid, 8, anchors, DualRecursiveBipartitioner(), target=target,
            seed=0,
        )
        for v, p in anchors.items():
            assert res.parts[v] == p

    def test_no_anchors_equals_plain_partition_quality(self, grid, target):
        plain = DualRecursiveBipartitioner().partition(grid, 8, target=target,
                                                       seed=0)
        anchored = partition_with_anchors(
            grid, 8, {}, DualRecursiveBipartitioner(), target=target, seed=0
        )
        # Same machinery + one extra refinement pass: no worse cut.
        assert edge_cut(grid, anchored.parts) <= edge_cut(grid, plain.parts) * 1.2

    def test_anchor_pulls_neighbourhood(self, target):
        """A corner anchored to part 7 should drag its neighbours along."""
        grid = CSRGraph.from_tdg(grid_graph(8, 8))
        res = partition_with_anchors(
            grid, 8, {0: 7}, DualRecursiveBipartitioner(), target=target,
            seed=1,
        )
        # Vertex 0's grid neighbours are 1 (right) and 8 (down).
        neighbourhood_parts = {int(res.parts[v]) for v in (0, 1, 8)}
        assert 7 in neighbourhood_parts

    def test_all_vertices_anchored(self, grid, target):
        anchors = {v: v % 8 for v in range(grid.n_vertices)}
        res = partition_with_anchors(
            grid, 8, anchors, DualRecursiveBipartitioner(), target=target,
            seed=0,
        )
        assert all(res.parts[v] == v % 8 for v in range(grid.n_vertices))

    def test_bad_anchor_vertex(self, grid, target):
        with pytest.raises(PartitionError):
            partition_with_anchors(grid, 8, {1000: 0},
                                   DualRecursiveBipartitioner(),
                                   target=target)

    def test_bad_anchor_part(self, grid, target):
        with pytest.raises(PartitionError):
            partition_with_anchors(grid, 8, {0: 9},
                                   DualRecursiveBipartitioner(),
                                   target=target)

    def test_refinement_moving_anchor_raises(self, grid, target, monkeypatch):
        """The moved-anchor check must be a real error (it guards against a
        refinement bug unpinning placed tasks), not a bare ``assert`` that
        ``python -O`` strips.  Simulate the bug by monkeypatching the
        refinement to move an anchored vertex."""
        import repro.partition.anchored as anchored_mod

        def buggy_refine(graph, parts, k, **kwargs):
            out = np.asarray(parts, dtype=np.int64).copy()
            out[0] = (out[0] + 1) % k  # move the anchor, ignore `fixed`
            return out

        monkeypatch.setattr(anchored_mod, "greedy_kway_refine", buggy_refine)
        with pytest.raises(PartitionError, match="anchor"):
            partition_with_anchors(
                grid, 8, {0: 3}, DualRecursiveBipartitioner(), target=target,
                seed=0,
            )


class TestRepartitionUsesAnchors:
    def test_repartition_keeps_chain_sockets(self, topo8):
        """With anchored repartitioning, windows of a chain program follow
        the sockets of their predecessors instead of re-randomising."""
        from repro.core import RGPScheduler
        from repro.runtime import TaskProgram, simulate

        p = TaskProgram()
        objs = []
        for c in range(8):
            a = p.data(f"a{c}", 131072)
            p.task(f"init{c}", outs=[a], work=0.1)
            objs.append(a)
        for it in range(12):
            for c in range(8):
                p.task(f"t{c}_{it}", inouts=[objs[c]], work=0.1)
        prog = p.finalize()
        sched = RGPScheduler(window_size=16, propagation="repartition",
                             partition_seed=0)
        res = simulate(prog, topo8, sched, seed=0, steal=False,
                       duration_jitter=0.0)
        assert sched.windows_partitioned > 2
        # Anchoring keeps chains on their sockets: little remote traffic.
        assert res.remote_fraction < 0.25
