"""Critical-path profiler: decomposition invariant, attribution, what-ifs.

Acceptance (ISSUE PR 7): on a seed-pinned figure-1 app, the ``repro
profile`` decomposition sums exactly to the makespan for every policy in
the verification POLICY_MATRIX.
"""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.errors import ProfilingError
from repro.experiments.config import ExperimentConfig
from repro.faults import CoreFault, FaultPlan, TaskCrash
from repro.machine import bullion_s16, presets
from repro.machine.interconnect import Interconnect
from repro.observability import Instrumentation, RingBufferSink
from repro.profiling import (
    COMPONENTS,
    AttributionModel,
    ProfileReport,
    profile_run,
)
from repro.runtime.simulator import Simulator
from repro.schedulers import make_scheduler
from repro.verify import POLICY_MATRIX


def _run(program, topo, scheduler_name, *, cfg=None, faults=None,
         sched_kwargs=None, seed=0, instrument=True, max_retries=3):
    cfg = cfg or ExperimentConfig.quick()
    interconnect = Interconnect(
        topo, remote_penalty_exp=cfg.remote_penalty_exp,
        link_fraction=cfg.link_fraction, core_fraction=cfg.core_fraction,
    )
    kwargs = dict(sched_kwargs or {})
    obs = (
        Instrumentation(sink=RingBufferSink(1 << 20)) if instrument else None
    )
    sim = Simulator(
        program, topo, make_scheduler(scheduler_name, **kwargs),
        interconnect=interconnect, seed=seed, steal=cfg.steal,
        faults=faults, instrument=obs, max_retries=max_retries,
    )
    result = sim.run()
    return result, interconnect


def _profile(scheduler_name, *, faults=None, sched_kwargs=None, seed=0,
             machine="bullion-s16", app="jacobi", instrument=True,
             max_retries=3):
    cfg = ExperimentConfig.quick()
    topo = presets.by_name(machine)
    params = dict(cfg.app_params.get(app, {}))
    program = make_app(app, **params).build(topo.n_sockets)
    result, interconnect = _run(
        program, topo, scheduler_name, cfg=cfg, faults=faults,
        sched_kwargs=sched_kwargs, seed=seed, instrument=instrument,
        max_retries=max_retries,
    )
    return program, result, profile_run(
        program, result, topo, interconnect=interconnect
    )


# ---------------------------------------------------------------------------
# The acceptance matrix: exact decomposition for every verified policy.


@pytest.mark.parametrize(
    "label,scheduler,kwargs",
    POLICY_MATRIX,
    ids=[label for label, _, _ in POLICY_MATRIX],
)
def test_decomposition_sums_to_makespan_policy_matrix(label, scheduler, kwargs):
    _, result, report = _profile(scheduler, sched_kwargs=kwargs)
    assert report.makespan == pytest.approx(result.makespan)
    # The invariant the module enforces with a raise; assert it anyway so
    # a weakened tolerance can never slip through the suite.
    assert report.component_sum() == pytest.approx(report.makespan, abs=1e-9)
    assert abs(report.residual) <= 1e-6 * max(1.0, report.makespan)
    assert set(report.totals) == set(COMPONENTS)
    assert all(v >= -1e-12 for v in report.totals.values())
    assert report.n_path_tasks >= 1


def test_segments_tile_zero_to_makespan():
    _, _, report = _profile("ep")
    cursor = 0.0
    for seg in report.segments:
        assert seg.t0 == pytest.approx(cursor, abs=1e-9)
        assert seg.t1 >= seg.t0
        assert sum(seg.parts.values()) == pytest.approx(seg.duration)
        cursor = seg.t1
    assert cursor == pytest.approx(report.makespan)


def test_dep_wait_zero_on_healthy_run():
    # Tasks are offered the instant their last dependence retires, so the
    # chain never has holes on a fault-free run (DESIGN.md §13).
    _, _, report = _profile("ep")
    assert report.totals["dep_wait"] == pytest.approx(0.0, abs=1e-9)
    assert report.totals["waste"] == pytest.approx(0.0, abs=1e-9)


# ---------------------------------------------------------------------------
# Faulted runs: waste/stall attribution still tiles exactly.


def test_decomposition_under_task_crashes():
    plan = FaultPlan(task_crashes=(TaskCrash(probability=0.08),))
    _, result, report = _profile("las", faults=plan, machine="two-socket")
    assert result.reexecutions > 0
    assert abs(report.residual) <= 1e-6 * max(1.0, report.makespan)
    # Machine view charges every crashed attempt as waste.
    assert report.machine_totals()["waste"] == pytest.approx(
        sum(r.duration for r in result.crashed_records)
    )


def test_decomposition_under_core_fault():
    plan = FaultPlan(core_faults=(CoreFault(core=1, at=1.0),))
    _, result, report = _profile("ep", faults=plan, machine="two-socket")
    assert abs(report.residual) <= 1e-6 * max(1.0, report.makespan)
    assert report.component_sum() == pytest.approx(report.makespan)


def test_stall_attribution_rgp_window():
    # RGP with a tiny window parks tasks while partitions are pending;
    # the profile must still tile exactly (stall may or may not land on
    # the critical path, but the decomposition must hold).
    _, _, report = _profile(
        "rgp+las", sched_kwargs={"window_size": 8},
    )
    assert abs(report.residual) <= 1e-6 * max(1.0, report.makespan)
    assert report.totals["stall"] >= 0.0


def test_profile_without_events_degrades_gracefully():
    # No instrumentation: sched.place events are unavailable, parked time
    # degrades into queue_wait, the invariant still holds.
    _, _, report = _profile(
        "rgp+las", sched_kwargs={"window_size": 8}, instrument=False,
    )
    assert abs(report.residual) <= 1e-6 * max(1.0, report.makespan)
    assert report.totals["stall"] == pytest.approx(0.0, abs=1e-9)


# ---------------------------------------------------------------------------
# What-if estimators.


def test_whatif_remote_local_bounds():
    _, _, report = _profile("ep")
    predicted = report.whatif_remote_local()
    # Remote-as-local can only help, and never below the non-remote time.
    assert predicted <= report.makespan + 1e-9
    assert predicted >= report.makespan - report.totals["mem_remote"] - 1e-9


def test_whatif_component_scaling():
    _, _, report = _profile("ep")
    assert report.whatif("mem_remote", 1.0) == pytest.approx(report.makespan)
    assert report.whatif("mem_remote", 0.0) == pytest.approx(
        report.makespan - report.totals["mem_remote"]
    )
    half = report.whatif("queue_wait", 0.5)
    assert half == pytest.approx(
        report.makespan - 0.5 * report.totals["queue_wait"]
    )
    with pytest.raises(ProfilingError):
        report.whatif("nonsense")
    with pytest.raises(ProfilingError):
        report.whatif("compute", -0.5)


# ---------------------------------------------------------------------------
# Attribution model units.


def test_attribution_split_sums_exactly():
    topo = bullion_s16()
    model = AttributionModel(Interconnect(topo))
    split = model.split(
        work=1.0, local_bytes=1e6, remote_bytes=5e5, socket=0, duration=7.3
    )
    assert split.compute + split.mem_local + split.mem_remote == pytest.approx(
        7.3, abs=1e-12
    )
    assert split.compute > 0 and split.mem_local > 0 and split.mem_remote > 0
    assert all(
        isinstance(v, float)
        for v in (split.compute, split.mem_local, split.mem_remote)
    )


def test_attribution_remote_costs_more_than_local():
    topo = bullion_s16()
    model = AttributionModel(Interconnect(topo))
    # Same byte count: the remote share of the duration must be larger.
    split = model.split(
        work=0.0, local_bytes=1e6, remote_bytes=1e6, socket=0, duration=1.0
    )
    assert split.mem_remote > split.mem_local
    # And re-running those remote bytes at the local rate must be cheaper.
    assert split.remote_as_local < split.mem_remote


def test_attribution_pure_compute():
    topo = bullion_s16()
    model = AttributionModel(Interconnect(topo))
    split = model.split(
        work=2.0, local_bytes=0.0, remote_bytes=0.0, socket=0, duration=4.0
    )
    assert split.compute == 4.0
    assert split.mem_local == 0.0 and split.mem_remote == 0.0


def test_attribution_negative_duration_rejected():
    topo = bullion_s16()
    model = AttributionModel(Interconnect(topo))
    with pytest.raises(ProfilingError):
        model.split(
            work=1.0, local_bytes=0.0, remote_bytes=0.0, socket=0,
            duration=-1.0,
        )


# ---------------------------------------------------------------------------
# Serialization / rendering.


def test_report_to_dict_json_safe():
    import json

    _, _, report = _profile("ep")
    full = report.to_dict()
    compact = report.to_dict(compact=True)
    json.dumps(full)
    json.dumps(compact)
    assert "segments" in full and "segments" not in compact
    assert compact["components"] == pytest.approx(full["components"])
    assert sum(compact["components"].values()) == pytest.approx(
        compact["makespan"]
    )


def test_report_render_mentions_components():
    _, _, report = _profile("ep")
    text = report.render()
    for comp in COMPONENTS:
        assert comp in text
    assert "what-if remote=local" in text


def test_profile_run_rejects_broken_tiling(monkeypatch):
    # Sabotage gap classification: wait intervals vanish from the tiling,
    # so the decomposition cannot sum to the makespan and the invariant
    # guard must fire (a real raise, not an assert — DESIGN.md §13).
    from repro.profiling import critical_path as cp

    program, result, report = _profile("ep")
    assert report.totals["queue_wait"] > 0  # the sabotage must matter
    topo = presets.by_name("bullion-s16")
    monkeypatch.setattr(cp, "_classify_gap", lambda lo, hi, w, s: [])
    with pytest.raises(ProfilingError, match="does not sum"):
        profile_run(program, result, topo)
