"""The zero-overhead guarantee: instrumentation must not change results.

Three levels, mirroring the fault-injection guarantee of
``test_faults_injection.py``:

* ``instrument=None`` (the default) — no emit site executes at all;
* a :class:`NullSink` — emits are state-free no-ops, metrics still accrue;
* a full :class:`RingBufferSink` — observation reads state but never
  mutates it or draws randomness.

All three must produce **byte-identical** schedules for every scheduler
the repo ships, fault-free and under an injected fault plan.
"""

import pytest

from repro.faults import CoreFault, FaultPlan, TaskCrash
from repro.machine import two_socket
from repro.observability import NULL_SINK, Instrumentation
from repro.runtime import TaskProgram, simulate
from repro.schedulers import SCHEDULERS, make_scheduler

ALL_POLICIES = sorted(SCHEDULERS)


def make_program(width: int = 8, obj_bytes: int = 65536) -> TaskProgram:
    """Fan-shaped program with ``ep_socket`` annotations so every policy
    (including EP) can schedule it."""
    prog = TaskProgram("fan")
    lanes = []
    for i in range(width):
        a = prog.data(f"a{i}", obj_bytes)
        prog.task(f"prod{i}", outs=[a], work=0.5,
                  meta={"ep_socket": i % 2})
        lanes.append(a)
    for i, a in enumerate(lanes):
        prog.task(f"cons{i}", ins=[a], work=0.5,
                  meta={"ep_socket": i % 2})
    sink = prog.data("sink", 4096)
    prog.task("join", ins=lanes, outs=[sink], work=0.1,
              meta={"ep_socket": 0})
    return prog.finalize()


def run(policy, instrument=None, seed=3, faults=None):
    topo = two_socket(cores_per_socket=2)
    return simulate(
        make_program(), topo, make_scheduler(policy),
        seed=seed, instrument=instrument, faults=faults,
    )


def schedule_fingerprint(result):
    """Everything that defines the schedule, byte for byte."""
    return (
        result.makespan,
        result.local_bytes,
        result.remote_bytes,
        result.steals,
        result.busy_time_per_socket.tobytes(),
        result.bytes_by_pair.tobytes(),
        tuple(
            (r.tid, r.core, r.socket, r.start, r.finish,
             r.local_bytes, r.remote_bytes, r.attempt)
            for r in result.records
        ),
    )


class TestZeroOverhead:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_null_sink_is_byte_identical(self, policy):
        """Acceptance gate: every seed scheduler, sink disabled, identical
        SimulationResult aggregates and records."""
        base = run(policy)
        instrumented = run(policy, instrument=Instrumentation(sink=NULL_SINK))
        assert schedule_fingerprint(base) == schedule_fingerprint(instrumented)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_ring_buffer_is_byte_identical(self, policy):
        """Even full event collection must not perturb the schedule."""
        base = run(policy)
        instrumented = run(policy, instrument=Instrumentation())
        assert schedule_fingerprint(base) == schedule_fingerprint(instrumented)

    def test_uninstrumented_result_has_no_observability_payload(self):
        base = run("las")
        assert base.events == []
        assert base.metrics is None

    @pytest.mark.parametrize("policy", ["las", "rgp+las", "dfifo"])
    def test_faulted_runs_also_byte_identical(self, policy):
        """Instrumentation must not perturb fault injection either (the
        injector's RNG stream is independent of the sink)."""
        plan = FaultPlan(
            core_faults=(CoreFault(core=1, at=0.4, duration=1.0),),
            task_crashes=(TaskCrash(probability=0.25, max_crashes=3),),
        )
        base = run(policy, faults=plan)
        instrumented = run(policy, faults=plan, instrument=Instrumentation())
        assert schedule_fingerprint(base) == schedule_fingerprint(instrumented)

    def test_instrumented_rerun_of_same_scheduler_object(self):
        """An instrumented run must not leave state (e.g. a partitioner
        observer) behind that changes a later uninstrumented run."""
        topo = two_socket(cores_per_socket=2)
        sched = make_scheduler("rgp+las")
        prog = make_program()
        r1 = simulate(prog, topo, sched, seed=3, instrument=Instrumentation())
        r2 = simulate(prog, topo, sched, seed=3)
        assert r2.events == []
        assert r2.metrics is None
        assert schedule_fingerprint(r1) == schedule_fingerprint(r2)
