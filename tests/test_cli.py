"""CLI tests (argument parsing and command execution on tiny inputs)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "las"])

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--app", "jacobi", "--scheduler", "magic"]
            )


class TestCommands:
    def test_apps_lists_registries(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "jacobi" in out and "rgp+las" in out and "bullion-s16" in out

    def test_run_quick(self, capsys, monkeypatch):
        self._shrink(monkeypatch)
        assert main(["run", "--app", "nstream", "--scheduler", "rgp+las",
                     "--quick", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "core" in out  # gantt

    def test_run_writes_traces(self, tmp_path, monkeypatch, capsys):
        self._shrink(monkeypatch)
        csv_path = tmp_path / "t.csv"
        json_path = tmp_path / "t.json"
        assert main(["run", "--app", "nstream", "--scheduler", "las",
                     "--quick", "--trace-csv", str(csv_path),
                     "--trace-json", str(json_path)]) == 0
        assert csv_path.exists() and json_path.exists()

    def test_figure1_quick(self, capsys, monkeypatch):
        self._shrink(monkeypatch)
        assert main(["figure1", "--quick", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "geomean" in out

    def test_analyze(self, capsys, monkeypatch, tmp_path):
        self._shrink(monkeypatch)
        dot = tmp_path / "tdg.dot"
        assert main(["analyze", "--app", "nstream", "--scheduler", "las",
                     "--quick", "--dot", str(dot)]) == 0
        out = capsys.readouterr().out
        assert "core utilization" in out
        assert "utilization [" in out
        assert dot.exists()

    def test_figure1_bars(self, capsys, monkeypatch):
        self._shrink(monkeypatch)
        assert main(["figure1", "--quick", "--seeds", "1", "--bars"]) == 0
        out = capsys.readouterr().out
        assert "geomean:" in out  # bar chart group

    def test_ablation_window(self, capsys, monkeypatch):
        self._shrink(monkeypatch)
        monkeypatch.setattr(
            "repro.experiments.ablations.ABLATION_APPS", ("nstream",)
        )
        assert main(["ablation", "window", "--quick", "--seeds", "1"]) == 0
        assert "window=" in capsys.readouterr().out

    @staticmethod
    def _shrink(monkeypatch):
        """Make --quick truly tiny so CLI tests stay fast."""
        tiny = {
            "cg": dict(nt=2, tile=16, iterations=2),
            "gauss-seidel": dict(nt=3, tile=16, sweeps=2),
            "histogram": dict(nt=3, tile=16, n_bins=2, repeats=2),
            "jacobi": dict(nt=3, tile=16, sweeps=2),
            "nstream": dict(n_blocks=6, block_elems=1024, iterations=2),
            "qr": dict(nt=3, tile=16),
            "redblack": dict(nt=3, tile=16, sweeps=2),
            "symminv": dict(nt=3, tile=16),
        }
        monkeypatch.setattr(
            "repro.experiments.config.QUICK_APP_PARAMS", tiny
        )


class TestTraceCommand:
    _shrink = staticmethod(TestCommands._shrink)

    def test_trace_writes_valid_chrome_json(self, tmp_path, capsys,
                                            monkeypatch):
        import json

        self._shrink(monkeypatch)
        out_path = tmp_path / "trace.json"
        assert main(["trace", "--app", "nstream", "--scheduler", "rgp+las",
                     "--machine", "two-socket", "--quick",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "perfetto" in out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["scheduler"] == "rgp+las"

    def test_trace_optional_paraver_and_metrics(self, tmp_path, capsys,
                                                monkeypatch):
        import json

        self._shrink(monkeypatch)
        chrome = tmp_path / "t.json"
        prv = tmp_path / "t.prv"
        met = tmp_path / "m.json"
        assert main(["trace", "--app", "nstream", "--scheduler", "las",
                     "--machine", "two-socket", "--quick",
                     "--out", str(chrome), "--paraver", str(prv),
                     "--metrics-json", str(met)]) == 0
        assert prv.read_text().startswith("#Paraver")
        assert "registry" in json.loads(met.read_text())

    def test_stats_prints_registry_summary(self, capsys, monkeypatch):
        self._shrink(monkeypatch)
        assert main(["stats", "--app", "nstream", "--scheduler", "rgp+las",
                     "--machine", "two-socket", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "numa.traffic" in out
        assert "tasks.completed" in out


class TestFaultsCommand:
    _shrink = staticmethod(TestCommands._shrink)

    def test_empty_plan_rejected(self, capsys, monkeypatch):
        self._shrink(monkeypatch)
        assert main(["faults", "--app", "nstream", "--scheduler", "las",
                     "--quick"]) == 2
        assert "empty" in capsys.readouterr().err

    def test_crash_plan_prints_report(self, capsys, monkeypatch):
        self._shrink(monkeypatch)
        assert main(["faults", "--app", "nstream", "--scheduler", "rgp+las",
                     "--machine", "two-socket", "--quick",
                     "--crash-prob", "0.5", "--max-retries", "30"]) == 0
        out = capsys.readouterr().out
        assert "resilience report" in out
        assert "re-executions" in out
        assert "degradation" in out

    def test_inline_specs_and_save_plan(self, tmp_path, capsys, monkeypatch):
        self._shrink(monkeypatch)
        plan_path = tmp_path / "plan.json"
        assert main(["faults", "--app", "nstream", "--scheduler", "las",
                     "--machine", "two-socket", "--quick",
                     "--fail-core", "0@0.001",
                     "--slow-core", "1@0*2",
                     "--degrade-node", "1@0*0.5",
                     "--save-plan", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "core 0 fails" in out
        assert plan_path.exists()

    def test_plan_file_round_trip_through_run(self, tmp_path, capsys,
                                              monkeypatch):
        from repro.faults import FaultPlan, TaskCrash

        self._shrink(monkeypatch)
        plan_path = tmp_path / "plan.json"
        FaultPlan(task_crashes=(TaskCrash(probability=0.4),)).dump(plan_path)
        assert main(["run", "--app", "nstream", "--scheduler", "las",
                     "--quick", "--faults", str(plan_path)]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_bad_spec_reports_clean_error(self, capsys, monkeypatch):
        self._shrink(monkeypatch)
        # fault-plan errors map to the documented exit code 5 (EXIT_FAULT)
        assert main(["faults", "--app", "nstream", "--scheduler", "las",
                     "--quick", "--fail-core", "nope"]) == 5
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "needs an '@'" in err
        assert "Traceback" not in err

    def test_debug_flag_reraises(self, monkeypatch):
        self._shrink(monkeypatch)
        from repro.errors import FaultError
        with pytest.raises(FaultError):
            main(["--debug", "faults", "--app", "nstream",
                  "--scheduler", "las", "--quick", "--fail-core", "nope"])
