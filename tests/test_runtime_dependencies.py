"""Unit tests for dependence derivation (RAW / WAW / WAR)."""

import pytest

from repro.runtime import TaskProgram


def edges(prog):
    return {(s, d): w for s, d, w in prog.tdg.edges()}


class TestRAW:
    def test_reader_depends_on_writer(self):
        p = TaskProgram()
        a = p.data("a", 1000)
        p.task("w", outs=[a])
        p.task("r", ins=[a])
        assert edges(p) == {(0, 1): 1000.0}

    def test_two_readers_share_writer(self):
        p = TaskProgram()
        a = p.data("a", 500)
        p.task("w", outs=[a])
        p.task("r1", ins=[a])
        p.task("r2", ins=[a])
        assert edges(p) == {(0, 1): 500.0, (0, 2): 500.0}

    def test_edge_weight_is_consumer_bytes(self):
        from repro.runtime import AccessMode, DataAccess

        p = TaskProgram()
        a = p.data("a", 1000)
        p.task("w", outs=[a])
        p.task("r", ins=[DataAccess(a, AccessMode.IN, offset=0, length=100)])
        assert edges(p)[(0, 1)] == 100.0


class TestWAW:
    def test_writer_chain(self):
        p = TaskProgram()
        a = p.data("a", 100)
        p.task("w1", outs=[a])
        p.task("w2", outs=[a])
        assert (0, 1) in edges(p)
        assert edges(p)[(0, 1)] == 0.0  # ordering only, no data moved

    def test_inout_chain_carries_bytes(self):
        p = TaskProgram()
        a = p.data("a", 256)
        p.task("w1", outs=[a])
        p.task("w2", inouts=[a])
        assert edges(p)[(0, 1)] == 256.0  # the read part of inout


class TestWAR:
    def test_writer_after_readers(self):
        p = TaskProgram()
        a = p.data("a", 100)
        p.task("w1", outs=[a])
        p.task("r", ins=[a])
        p.task("w2", outs=[a])
        e = edges(p)
        assert (1, 2) in e and e[(1, 2)] == 0.0

    def test_war_after_multiple_readers(self):
        p = TaskProgram()
        a = p.data("a", 100)
        p.task("w1", outs=[a])
        p.task("r1", ins=[a])
        p.task("r2", ins=[a])
        p.task("w2", outs=[a])
        e = edges(p)
        assert (1, 3) in e and (2, 3) in e

    def test_readers_reset_after_write(self):
        p = TaskProgram()
        a = p.data("a", 100)
        p.task("w1", outs=[a])
        p.task("r1", ins=[a])
        p.task("w2", outs=[a])
        p.task("w3", outs=[a])
        e = edges(p)
        assert (1, 3) not in e  # r1 was before w2; w3 only orders after w2


class TestMultiObject:
    def test_independent_objects_no_edges(self):
        p = TaskProgram()
        a = p.data("a", 100)
        b = p.data("b", 100)
        p.task("w1", outs=[a])
        p.task("w2", outs=[b])
        assert edges(p) == {}

    def test_edge_weights_accumulate_across_objects(self):
        p = TaskProgram()
        a = p.data("a", 100)
        b = p.data("b", 300)
        p.task("w", outs=[a, b])
        p.task("r", ins=[a, b])
        assert edges(p) == {(0, 1): 400.0}

    def test_unwritten_input_has_no_edge(self):
        p = TaskProgram()
        a = p.data("a", 100, initial_node=0)
        p.task("r", ins=[a])
        assert edges(p) == {}
        assert p.tdg.in_degree(0) == 0

    def test_last_writer_query(self):
        from repro.runtime import DependencyTracker

        p = TaskProgram()
        a = p.data("a", 100)
        p.task("w", outs=[a])
        assert p._tracker.last_writer(a.key) == 0
        assert p._tracker.last_writer(99) is None
