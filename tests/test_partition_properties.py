"""Property-based tests (hypothesis) for the partitioning substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph
from repro.partition import (
    DualRecursiveBipartitioner,
    MultilevelKWay,
    coarsen_once,
    edge_cut,
    fm_bisection_refine,
    imbalance,
    partition_onto,
)
from repro.machine.interconnect import _waterfill


@st.composite
def csr_graphs(draw, max_vertices=40, max_edges=120):
    """Random small undirected weighted graphs."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(n_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        w = draw(st.floats(min_value=0.1, max_value=50.0,
                           allow_nan=False, allow_infinity=False))
        edges.append((u, v, w))
    vwgt = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.1, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n,
            )
        )
    )
    return CSRGraph.from_edges(n, edges, vwgt)


@given(csr_graphs(), st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_multilevel_partition_is_total_and_in_range(graph, k, seed):
    k = min(k, graph.n_vertices)  # k > n raises by contract
    res = MultilevelKWay().partition(graph, k, seed=seed)
    assert len(res.parts) == graph.n_vertices
    assert res.parts.min() >= 0
    assert res.parts.max() < k


@given(csr_graphs(), st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_partition_onto_spreads_oversized_k(graph, k, seed):
    """partition_onto handles any k: backend answer for k <= n, an
    injective spread (no part gets two vertices) for k > n."""
    res = partition_onto(MultilevelKWay(), graph, k, seed=seed)
    assert len(res.parts) == graph.n_vertices
    assert res.parts.min() >= 0
    assert res.parts.max() < k
    if k > graph.n_vertices:
        assert res.meta.get("spread") is True
        assert len(np.unique(res.parts)) == graph.n_vertices


@given(csr_graphs(), st.integers(min_value=2, max_value=5),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40, deadline=None)
def test_drb_balance_bounded_by_heaviest_vertex(graph, k, seed):
    """The k-way imbalance never exceeds tolerance + the granularity floor
    imposed by the single heaviest vertex."""
    k = min(k, graph.n_vertices)
    res = DualRecursiveBipartitioner(tolerance=0.05).partition(
        graph, k, seed=seed
    )
    ideal = graph.vwgt.sum() / k
    slack = graph.vwgt.max() / ideal if ideal > 0 else 0.0
    assert imbalance(graph, res.parts, k) <= 0.05 + k * slack + 1e-9


@given(csr_graphs(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=50, deadline=None)
def test_fm_never_worsens_cut_of_balanced_start(graph, seed):
    rng = np.random.default_rng(seed)
    parts = rng.integers(0, 2, graph.n_vertices)
    before = edge_cut(graph, parts)
    refined = fm_bisection_refine(graph, parts, 0.5, tolerance=1.0)
    # With a tolerance this loose every state is feasible, so the rolled
    # back best prefix can never be worse than the start.
    assert edge_cut(graph, refined) <= before + 1e-9


@given(csr_graphs(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=50, deadline=None)
def test_coarsening_preserves_vertex_weight(graph, seed):
    level = coarsen_once(graph, np.random.default_rng(seed))
    if level is not None:
        np.testing.assert_allclose(level.graph.vwgt.sum(), graph.vwgt.sum())
        assert level.graph.n_vertices < graph.n_vertices
        # every fine vertex maps to a valid coarse vertex
        assert level.fine_to_coarse.min() >= 0
        assert level.fine_to_coarse.max() < level.graph.n_vertices


@given(
    st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20),
    st.floats(min_value=0.01, max_value=200.0),
)
@settings(max_examples=100, deadline=None)
def test_waterfill_feasible_and_work_conserving(caps, budget):
    caps = np.asarray(caps)
    rates = _waterfill(caps, budget)
    assert np.all(rates <= caps + 1e-9)
    assert rates.sum() <= budget + 1e-6
    # Work conservation: either the budget or every cap is exhausted.
    assert (
        abs(rates.sum() - min(budget, caps.sum())) < 1e-6
    )
