"""Pipelined asynchronous repartitioning (DESIGN.md §10).

Covers the prefetch trigger, per-window parking/delivery, the blocking
(``prefetch_threshold=1.0``) reference point, per-window timeout
degradation, adaptive window sizing, and the inertness guarantee of the
disabled configuration (the byte-level half of which is pinned by the
golden fixture in ``test_rgp_inertness.py``).
"""

import pytest

from repro.core import AUTO_MIN_WINDOW, RGPScheduler
from repro.core.window import WindowTracker, next_auto_window_size
from repro.errors import SchedulerError
from repro.machine import bullion_s16, two_socket
from repro.observability import Instrumentation
from repro.runtime import Simulator, TaskProgram, simulate
from repro.runtime.validation import validate_schedule


def staged_program(stages=5, lanes=6, nbytes=65536):
    """``stages`` all-to-all-gated stages of ``lanes`` parallel tasks.

    Every stage-``s`` task reads all of stage ``s-1``'s outputs, so a
    stage only becomes ready when the previous stage has *fully* finished
    — the structure where prefetching (launch at a fraction of the
    previous window) genuinely beats demand-launching.  Lane works are
    spread so stage completions stagger.
    """
    p = TaskProgram("staged")
    prev = []
    for s in range(stages):
        outs = []
        for i in range(lanes):
            a = p.data(f"d{s}_{i}", nbytes)
            p.task(f"s{s}_{i}", ins=list(prev), outs=[a],
                   work=0.4 + 0.25 * i)
            outs.append(a)
        prev = outs
    return p.finalize()


def make_sched(threshold, window=6, delay=0.6, **kw):
    return RGPScheduler(
        window_size=window, propagation="repartition",
        partition_delay=delay, prefetch_threshold=threshold,
        partition_seed=1, **kw,
    )


class TestValidation:
    def test_threshold_range_enforced(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(SchedulerError, match="prefetch_threshold"):
                RGPScheduler(propagation="repartition",
                             prefetch_threshold=bad)

    def test_threshold_requires_repartition(self):
        with pytest.raises(SchedulerError, match="repartition"):
            RGPScheduler(propagation="las", prefetch_threshold=0.5)

    def test_window_spec_validated(self):
        with pytest.raises(SchedulerError):
            RGPScheduler(window_size=0)
        assert RGPScheduler(window_size="auto").window_size == "auto"


class TestPipelinedExecution:
    def test_completes_and_validates(self):
        topo = bullion_s16()
        p = staged_program()
        sched = make_sched(0.5)
        sim = Simulator(p, topo, sched, seed=0)
        res = sim.run()
        validate_schedule(p, res, topo)
        assert res.n_tasks == p.n_tasks
        assert sched.pipelining_active
        # Every later window went through the async launch machinery.
        assert sched.windows_partitioned == 5
        # The temporary queue fully drained, keyed index included.
        assert sim.parked == []
        assert sim.parked_by_key == {}

    def test_pipelined_beats_blocking(self):
        """The tentpole's point: launching window k+1 at half of window k
        hides partition latency that the blocking scheduler exposes."""
        topo = bullion_s16()
        p = staged_program()
        runs = {}
        for threshold in (1.0, 0.5):
            sched = make_sched(threshold)
            res = simulate(p, topo, sched, seed=0, duration_jitter=0.0)
            runs[threshold] = (res.makespan, sched.pipeline_stall_time)
        blocking_makespan, blocking_stall = runs[1.0]
        pipelined_makespan, pipelined_stall = runs[0.5]
        assert pipelined_makespan < blocking_makespan
        assert pipelined_stall < blocking_stall

    def test_blocking_launches_on_demand(self):
        """With ``prefetch_threshold=1.0`` every stage's tasks park for
        the full partition latency (the latency is exposed)."""
        topo = bullion_s16()
        p = staged_program()
        sched = make_sched(1.0)
        sim = Simulator(p, topo, sched, seed=0)
        res = sim.run()
        validate_schedule(p, res, topo)
        # Later-window tasks parked while their partition was in flight.
        assert res.parked_tasks > 0
        assert sched.pipeline_stall_time > 0.0

    def test_prefetch_trigger_emits_launch_events(self):
        topo = two_socket(cores_per_socket=2)
        p = staged_program(stages=4, lanes=6)
        obs = Instrumentation()
        sched = make_sched(0.5)
        res = simulate(p, topo, sched, seed=0, instrument=obs,
                       duration_jitter=0.0)
        launches = [e for e in res.events if e.kind == "rgp.partition.launch"]
        assert [e.args["window"] for e in launches] == [1, 2, 3]
        assert all(e.args["trigger"] == "prefetch" for e in launches)
        # Deliveries publish the window's quality stats with the charged
        # latency.
        ends = [e for e in res.events if e.kind == "rgp.partition.end"]
        assert {e.args["window"] for e in ends} == {0, 1, 2, 3}
        assert all(
            e.args["delay"] == 0.6 for e in ends if e.args["window"] > 0
        )

    def test_early_tasks_in_later_windows_demand_launch(self):
        """Roots living beyond the cutoff are ready at t=0, before any
        prefetch trigger: they demand-launch their window and park."""
        topo = two_socket(cores_per_socket=2)
        p = TaskProgram("chains")
        for c in range(6):
            a = p.data(f"a{c}", 65536)
            p.task(f"init{c}", outs=[a], work=0.5)
            for i in range(3):
                p.task(f"t{c}_{i}", inouts=[a], work=0.5)
        prog = p.finalize()
        obs = Instrumentation()
        sched = make_sched(0.5, window=4, delay=1.0)
        sim = Simulator(prog, topo, sched, seed=0, instrument=obs)
        res = sim.run()
        validate_schedule(prog, res, topo)
        launches = [e for e in res.events if e.kind == "rgp.partition.launch"]
        assert any(e.args["trigger"] == "demand" for e in launches)
        # Demand-launched windows still charge the latency: those roots
        # parked and started only after the delivery.
        assert res.parked_tasks > 0

    def test_stall_gauge_recorded(self):
        topo = two_socket(cores_per_socket=2)
        p = staged_program(stages=4, lanes=6)
        obs = Instrumentation()
        sched = make_sched(1.0)  # blocking: guaranteed stalls
        res = simulate(p, topo, sched, seed=0, instrument=obs)
        gauges = res.metrics["gauges"]
        assert "rgp.pipeline.stall_us" in gauges
        assert sched.pipeline_stall_time > 0.0


class TestPerWindowTimeout:
    def test_each_window_degrades_independently(self):
        topo = bullion_s16()
        p = staged_program()
        sched = make_sched(0.5, delay=5.0, partition_timeout=0.1)
        sim = Simulator(p, topo, sched, seed=0)
        res = sim.run()
        validate_schedule(p, res, topo)
        # Window 0 plus every launched later window timed out.
        assert sched.audit["partition_timeout"] >= 2
        assert sched.audit.get("fallback", 0) > 0
        assert res.n_tasks == p.n_tasks
        assert sim.parked == [] and sim.parked_by_key == {}

    def test_late_delivery_after_window_timeout_is_noop(self):
        topo = bullion_s16()
        p = staged_program(stages=3, lanes=6)
        sched = make_sched(0.5, delay=5.0, partition_timeout=0.1)
        res = simulate(p, topo, sched, seed=0)
        # No double re-offer / duplicate execution from the late delivery.
        assert sorted(r.tid for r in res.records) == list(range(p.n_tasks))


class TestAdaptiveWindow:
    def test_auto_resizes_and_emits_events(self):
        topo = bullion_s16()
        # Many short tasks + a latency worth hiding: the steady-state
        # target W* = throughput * delay / (1 - f) sits far above the
        # 32-task floor, so the controller must grow the windows.
        p = TaskProgram("short-stages")
        prev = []
        for s in range(5):
            outs = []
            for i in range(48):
                a = p.data(f"d{s}_{i}", 4096)
                p.task(f"s{s}_{i}", ins=list(prev), outs=[a], work=0.1)
                outs.append(a)
            prev = outs
        p = p.finalize()
        obs = Instrumentation()
        sched = RGPScheduler(
            window_size="auto", propagation="repartition",
            partition_delay=20.0, prefetch_threshold=0.5, partition_seed=1,
        )
        sim = Simulator(p, topo, sched, seed=0, instrument=obs)
        res = sim.run()
        validate_schedule(p, res, topo)
        resizes = [e for e in res.events if e.kind == "rgp.window.resize"]
        assert resizes, "adaptive controller never adjusted the window"
        for e in resizes:
            assert e.args["new"] >= AUTO_MIN_WINDOW
            assert e.args["throughput"] > 0.0
        # Window boundaries reflect the resizes (not all equal strides).
        strides = {
            b - a for a, b in zip(sched._windows.bounds[1:],
                                  sched._windows.bounds[2:])
        }
        assert len(strides) > 1

    def test_auto_without_pipelining_stays_fixed(self):
        """``window_size="auto"`` with pipelining off must behave exactly
        like the default window size (the controller only runs at
        pipelined launches)."""
        topo = two_socket(cores_per_socket=2)
        p = staged_program(stages=3, lanes=6)
        auto = RGPScheduler(window_size="auto", propagation="repartition",
                            partition_seed=1)
        res_a = simulate(p, topo, auto, seed=0)
        fixed = RGPScheduler(window_size=1024, propagation="repartition",
                             partition_seed=1)
        res_f = simulate(p, topo, fixed, seed=0)
        key = lambda res: [(r.tid, r.core, r.start, r.finish)
                           for r in res.records]
        assert key(res_a) == key(res_f)

    def test_control_law_targets_latency_hiding(self):
        # W* = throughput * delay / (1 - f); damping moves halfway.
        assert next_auto_window_size(100, throughput=200.0,
                                     partition_delay=1.0,
                                     prefetch_threshold=0.5) == 250
        # Clamped at the floor / ceiling.
        assert next_auto_window_size(32, 1.0, 0.01, 0.5) == 32
        assert next_auto_window_size(16384, 1e9, 10.0, 0.99) == 16384
        # No throughput sample yet: keep the current size.
        assert next_auto_window_size(64, 0.0, 1.0, 0.5) == 64


class TestWindowTracker:
    def test_constant_size_matches_legacy_arithmetic(self):
        t = WindowTracker(cutoff=10, n_tasks=100, next_size=16)
        # Legacy: lo = cutoff + ((tid - cutoff) // size) * size
        for tid in (10, 25, 26, 99):
            lo = 10 + ((tid - 10) // 16) * 16
            hi = min(lo + 16, 100)
            w = t.index_of(tid)
            assert t.span(w) == (lo, hi)
            assert w == 1 + (lo - 10) // 16

    def test_resize_only_affects_unmaterialised_windows(self):
        t = WindowTracker(cutoff=10, n_tasks=1000, next_size=16)
        assert t.index_of(30) == 2  # materialises [10,26) and [26,42)
        t.next_size = 100
        assert t.span(2) == (26, 42)  # fixed boundary unchanged
        assert t.span(3) == (42, 142)  # new stride from here on


class TestDisabledInertness:
    """Property-level half of the inertness guarantee; the byte-level
    golden comparison lives in ``test_rgp_inertness.py``."""

    def test_pipeline_inactive_without_threshold(self):
        topo = two_socket(cores_per_socket=2)
        p = staged_program(stages=3, lanes=6)
        sched = RGPScheduler(window_size=6, propagation="repartition",
                             partition_delay=0.6, partition_seed=1)
        sim = Simulator(p, topo, sched, seed=0)
        sim.run()
        assert not sched.pipelining_active
        # The keyed park index is never touched on the legacy path.
        assert sim.parked_by_key == {}

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_disabled_matches_fresh_legacy_run(self, seed):
        topo = two_socket(cores_per_socket=2)
        p = staged_program(stages=4, lanes=8)
        a = RGPScheduler(window_size=8, propagation="repartition",
                         partition_delay=0.3, partition_seed=None)
        res_a = simulate(p, topo, a, seed=seed)
        b = RGPScheduler(window_size=8, propagation="repartition",
                         partition_delay=0.3, partition_seed=None,
                         prefetch_threshold=None)
        res_b = simulate(p, topo, b, seed=seed)
        key = lambda res: [(r.tid, r.core, r.socket, r.start, r.finish)
                           for r in res.records]
        assert key(res_a) == key(res_b)
