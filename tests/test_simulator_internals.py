"""White-box tests of simulator internals: queues, stealing, timers."""

import numpy as np
import pytest

from repro.machine import bullion_s16, two_socket
from repro.runtime import Placement, Simulator, TaskProgram
from repro.schedulers.base import Scheduler


class CoreQueueScheduler(Scheduler):
    """Places task i on core i % n (DFIFO-like, but by tid)."""

    name = "coreq"

    def choose(self, task):
        return Placement(core=task.tid % self.topology.n_cores)


class SocketZero(Scheduler):
    name = "socket0"

    def choose(self, task):
        return Placement(socket=0)


def program_of(n, work=1.0):
    p = TaskProgram()
    for _ in range(n):
        p.task(work=work)
    return p.finalize()


class TestQueues:
    def test_core_queue_respected_without_steal(self):
        topo = two_socket(cores_per_socket=2)
        prog = program_of(8)
        sim = Simulator(prog, topo, CoreQueueScheduler(), steal=False,
                        duration_jitter=0.0)
        res = sim.run()
        for rec in res.records:
            assert rec.core == rec.tid % 4

    def test_steal_from_core_queues(self):
        """Idle sockets must be able to steal work parked on other cores'
        private queues."""
        topo = two_socket(cores_per_socket=2)
        p = TaskProgram()
        for _ in range(8):
            p.task(work=1.0)
        prog = p.finalize()

        class AllOnCoreZero(Scheduler):
            name = "core0"

            def choose(self, task):
                return Placement(core=0)

        res_nosteal = Simulator(prog, topo, AllOnCoreZero(), steal=False,
                                duration_jitter=0.0).run()
        res_steal = Simulator(prog, topo, AllOnCoreZero(), steal=True,
                              duration_jitter=0.0).run()
        assert res_nosteal.makespan == pytest.approx(8.0)
        assert res_steal.makespan < res_nosteal.makespan
        assert res_steal.steals > 0

    def test_socket_queue_fifo_order(self):
        topo = two_socket(cores_per_socket=1)
        prog = program_of(4)
        res = Simulator(prog, topo, SocketZero(), steal=False,
                        duration_jitter=0.0).run()
        starts = sorted(res.records, key=lambda r: r.start)
        assert [r.tid for r in starts] == [0, 1, 2, 3]


class TestTimers:
    def test_timers_fire_in_order(self, topo2):
        fired = []

        class Timed(SocketZero):
            def on_program_start(self):
                self.sim.schedule_timer(3.0, lambda: fired.append(3))
                self.sim.schedule_timer(1.0, lambda: fired.append(1))
                self.sim.schedule_timer(2.0, lambda: fired.append(2))

        prog = program_of(1, work=5.0)
        Simulator(prog, topo2, Timed(), duration_jitter=0.0).run()
        assert fired == [1, 2, 3]

    def test_same_time_timers_fifo(self, topo2):
        fired = []

        class Timed(SocketZero):
            def on_program_start(self):
                for i in range(4):
                    self.sim.schedule_timer(1.0, lambda i=i: fired.append(i))

        prog = program_of(1, work=2.0)
        Simulator(prog, topo2, Timed(), duration_jitter=0.0).run()
        assert fired == [0, 1, 2, 3]

    def test_timer_can_reoffer_subset(self, topo2):
        """reoffer() must remove exactly the passed tasks from the parked
        list and leave others parked."""

        class ParkTwoReleaseOne(SocketZero):
            def __init__(self):
                super().__init__()
                self.parked_n = 0

            def on_program_start(self):
                self.sim.schedule_timer(1.0, self._release_first)
                self.sim.schedule_timer(2.0, self._release_rest)

            def choose(self, task):
                if self.parked_n < 2:
                    self.parked_n += 1
                    return Placement(park=True)
                return Placement(socket=0)

            def _release_first(self):
                self.sim.reoffer(self.sim.parked[:1])

            def _release_rest(self):
                self.sim.reoffer(list(self.sim.parked))

        prog = program_of(2, work=0.5)
        sim = Simulator(prog, topo2, ParkTwoReleaseOne(), duration_jitter=0.0)
        res = sim.run()
        starts = sorted(r.start for r in res.records)
        assert starts[0] == pytest.approx(1.0)
        assert starts[1] == pytest.approx(2.0)
        assert not sim.parked


class TestStealDistanceOrdering:
    def test_steals_prefer_nearest_victim(self):
        """On the bullion, an idle socket must steal from its module
        sibling before anything farther."""
        topo = bullion_s16()
        p = TaskProgram()
        for _ in range(12):
            p.task(work=1.0)
        prog = p.finalize()

        class TwoVictims(Scheduler):
            name = "twovictims"

            def choose(self, task):
                # Queue everything on sockets 1 (sibling of 0) and 7 (far).
                return Placement(socket=1 if task.tid % 2 == 0 else 7)

        sim = Simulator(prog, topo, TwoVictims(), steal=True,
                        duration_jitter=0.0)
        res = sim.run()
        # Socket 0's cores stole; their tasks must come from socket 1's
        # queue (near) whenever it was non-empty.
        stolen_to_0 = [r for r in res.records if r.socket == 0]
        assert res.steals > 0
        assert stolen_to_0, "socket 0 should have stolen something"


class TestJitter:
    def test_jitter_bounded(self, topo2):
        prog = program_of(1, work=1.0)
        for seed in range(10):
            res = Simulator(prog, topo2, SocketZero(), seed=seed,
                            duration_jitter=0.05).run()
            assert 0.95 - 1e-9 <= res.makespan <= 1.05 + 1e-9

    def test_zero_jitter_exact(self, topo2):
        prog = program_of(1, work=1.0)
        res = Simulator(prog, topo2, SocketZero(), seed=3,
                        duration_jitter=0.0).run()
        assert res.makespan == pytest.approx(1.0)


class TestStallDiagnostics:
    """max_iterations and deadlock errors must fail fast and say *why*."""

    def test_max_iterations_raises_instead_of_looping(self):
        from repro.errors import SimulationError

        prog = program_of(8, work=1.0)
        sim = Simulator(prog, two_socket(cores_per_socket=2), SocketZero(),
                        max_iterations=1, duration_jitter=0.0)
        with pytest.raises(SimulationError, match="no convergence"):
            sim.run()

    def test_max_iterations_message_classifies_stall(self):
        from repro.errors import SimulationError

        prog = program_of(8, work=1.0)
        sim = Simulator(prog, two_socket(cores_per_socket=2), SocketZero(),
                        max_iterations=1, duration_jitter=0.0)
        with pytest.raises(SimulationError, match="not a dependence cycle"):
            sim.run()

    def test_deadlock_message_names_stuck_tasks(self, topo2):
        from repro.errors import SimulationError

        class ParkForever(Scheduler):
            name = "park-forever"

            def choose(self, task):
                return Placement(park=True)

        p = TaskProgram("stuck")
        a = p.data("a", 4096)
        p.task("alpha", outs=[a], work=1.0)
        p.task("beta", inouts=[a], work=1.0)
        prog = p.finalize()
        sim = Simulator(prog, topo2, ParkForever())
        with pytest.raises(SimulationError) as err:
            sim.run()
        msg = str(err.value)
        assert "deadlock" in msg
        assert "genuine stall" in msg
        assert "alpha" in msg  # the stuck task is named
        assert "0/2 done" in msg  # state summary present

    def test_stuck_task_list_is_truncated(self, topo2):
        from repro.errors import SimulationError

        class ParkForever(Scheduler):
            name = "park-forever"

            def choose(self, task):
                return Placement(park=True)

        prog = program_of(20, work=1.0)
        with pytest.raises(SimulationError, match="more"):
            Simulator(prog, topo2, ParkForever()).run()
