"""Structural tests of the benchmark task graphs (no payload, no sim)."""

import pytest

from repro.apps import APPS, make_app
from repro.apps.base import ep_block, ep_block_cyclic_2d
from repro.apps.tiles import TiledField, ep_grid_block
from repro.errors import ApplicationError
from repro.graph import level_widths, summarize, topological_order
from repro.runtime import TaskProgram

SMALL = {
    "nstream": dict(n_blocks=4, block_elems=64, iterations=3),
    "jacobi": dict(nt=3, tile=4, sweeps=2),
    "gauss-seidel": dict(nt=3, tile=4, sweeps=2),
    "redblack": dict(nt=3, tile=4, sweeps=2),
    "histogram": dict(nt=3, tile=4, n_bins=2, repeats=2),
    "cg": dict(nt=2, tile=4, iterations=2),
    "qr": dict(nt=3, tile=4),
    "symminv": dict(nt=3, tile=4),
    "synthetic": dict(kind="chains", scale=4, bytes_per_unit=4096),
}


@pytest.mark.parametrize("app_name", sorted(SMALL))
class TestCommonStructure:
    def test_builds_valid_program(self, app_name):
        prog = make_app(app_name, **SMALL[app_name]).build(8)
        prog.validate()
        assert prog.n_tasks > 0
        topological_order(prog.tdg)  # raises on malformed DAGs

    def test_every_task_has_ep_annotation(self, app_name):
        prog = make_app(app_name, **SMALL[app_name]).build(8)
        for t in prog.tasks:
            assert "ep_socket" in t.meta, t.name
            assert 0 <= t.meta["ep_socket"] < 8

    def test_ep_placement_uses_multiple_sockets(self, app_name):
        prog = make_app(app_name, **SMALL[app_name]).build(8)
        sockets = {t.meta["ep_socket"] for t in prog.tasks}
        assert len(sockets) >= 2

    def test_positive_work(self, app_name):
        prog = make_app(app_name, **SMALL[app_name]).build(8)
        assert all(t.work > 0 for t in prog.tasks)

    def test_deterministic_build(self, app_name):
        a = make_app(app_name, **SMALL[app_name]).build(8)
        b = make_app(app_name, **SMALL[app_name]).build(8)
        assert a.n_tasks == b.n_tasks
        assert sorted(a.tdg.edges()) == sorted(b.tdg.edges())

    def test_bad_params_rejected(self, app_name):
        cls = APPS[app_name]
        with pytest.raises(ApplicationError):
            first_param = next(iter(SMALL[app_name]))
            cls(**{first_param: 0})


class TestTaskCounts:
    def test_nstream(self):
        prog = make_app("nstream", n_blocks=4, block_elems=64,
                        iterations=3).build(8)
        assert prog.n_tasks == 4 * (1 + 3)

    def test_jacobi(self):
        prog = make_app("jacobi", nt=3, tile=4, sweeps=2).build(8)
        assert prog.n_tasks == 9 + 2 * 9

    def test_histogram(self):
        prog = make_app("histogram", nt=3, tile=4, n_bins=2,
                        repeats=2).build(8)
        assert prog.n_tasks == 9 + 2 * (9 + 9)

    def test_qr_kernel_counts(self):
        nt = 3
        prog = make_app("qr", nt=nt, tile=4).build(8)
        names = [t.name.split("(")[0] for t in prog.tasks]
        assert names.count("geqrt") == nt
        assert names.count("tsqrt") == nt * (nt - 1) // 2
        assert names.count("larfb") == nt * (nt - 1) // 2
        # ssrfb count: sum over k of (nt-k-1)^2
        assert names.count("ssrfb") == sum(
            (nt - k - 1) ** 2 for k in range(nt)
        )

    def test_symminv_phases(self):
        prog = make_app("symminv", nt=3, tile=4).build(8)
        assert prog.n_epochs == 3  # cholesky | inversion | product


class TestDependenceShapes:
    def test_nstream_chains_independent(self):
        prog = make_app("nstream", n_blocks=3, block_elems=64,
                        iterations=4).build(8)
        from repro.graph import weakly_connected_components

        comps = weakly_connected_components(prog.tdg)
        assert len(comps) == 3

    def test_gauss_seidel_wavefront_is_narrow(self):
        gs = make_app("gauss-seidel", nt=4, tile=4, sweeps=1,
                      barrier_between_sweeps=False).build(8)
        # One sweep of a 4x4 wavefront: width peaks at the diagonal (4).
        widths = level_widths(gs.tdg)
        assert widths.max() <= 16  # inits are level 0
        s = summarize(gs.tdg)
        assert s.n_levels >= 7  # 16 inits + 7 diagonals

    def test_jacobi_sweep_depends_on_five_tiles(self):
        prog = make_app("jacobi", nt=3, tile=4, sweeps=1).build(8)
        # Centre tile of the sweep depends on its init + 4 neighbour inits.
        centre = next(t for t in prog.tasks if t.name == "sweep0(1,1)")
        assert prog.tdg.in_degree(centre.tid) == 5

    def test_histogram_cross_weave_deps(self):
        prog = make_app("histogram", nt=3, tile=4, n_bins=2,
                        repeats=1).build(8)
        h11 = next(t for t in prog.tasks if t.name == "hpass0(1,1)")
        v11 = next(t for t in prog.tasks if t.name == "vpass0(1,1)")
        # hpass(1,1): load(1,1) + hpass(1,0); vpass(1,1): hpass(1,1) + vpass(0,1).
        assert prog.tdg.in_degree(h11.tid) == 2
        assert prog.tdg.in_degree(v11.tid) == 2

    def test_redblack_colour_ordering(self):
        prog = make_app("redblack", nt=3, tile=4, sweeps=1,
                        barrier_between_phases=False).build(8)
        red = [t for t in prog.tasks if t.name.startswith("red0")]
        black = [t for t in prog.tasks if t.name.startswith("black0")]
        assert len(red) == 5 and len(black) == 4
        assert max(t.tid for t in red) < min(t.tid for t in black)

    def test_cg_reduction_fan_in(self):
        prog = make_app("cg", nt=2, tile=4, iterations=1).build(8)
        reduce0 = next(t for t in prog.tasks if t.name == "reduce_rr0")
        assert prog.tdg.in_degree(reduce0.tid) == 4  # one partial per tile


class TestEPHelpers:
    def test_ep_block(self):
        assert [ep_block(i, 8, 4) for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_ep_block_cyclic_2d_range(self):
        for i in range(6):
            for j in range(6):
                assert 0 <= ep_block_cyclic_2d(i, j, 8) < 8

    def test_ep_block_cyclic_2d_grid_shape(self):
        # 8 sockets -> 4x2 grid.
        assert ep_block_cyclic_2d(0, 0, 8) != ep_block_cyclic_2d(1, 0, 8)
        assert ep_block_cyclic_2d(0, 0, 8) != ep_block_cyclic_2d(0, 1, 8)
        assert ep_block_cyclic_2d(0, 0, 8) == ep_block_cyclic_2d(4, 0, 8)
        assert ep_block_cyclic_2d(0, 0, 8) == ep_block_cyclic_2d(0, 2, 8)

    def test_ep_grid_block_contiguous(self):
        # 4x4 tiles over 4 sockets: 2x2 blocks.
        blocks = {(r, c): ep_grid_block(r, c, 4, 4, 4) for r in range(4)
                  for c in range(4)}
        assert blocks[(0, 0)] == blocks[(0, 1)] == blocks[(1, 1)]
        assert blocks[(0, 0)] != blocks[(2, 2)]

    def test_tiled_field_helpers(self):
        prog = TaskProgram()
        f = TiledField(prog, "u", 3, 3, 4, 4)
        assert len(f.halo_reads(1, 1)) == 4
        assert len(f.halo_reads(0, 0)) == 2
        assert len(f.own_borders(2, 2)) == 4
        assert len(list(f.tiles())) == 9
        # objects: 9 interiors + 36 borders
        assert prog.n_objects == 45
