"""Oracle suite: the exact partitioner against brute force and heuristics.

The exact backend's whole point is trust: these tests machine-check the
claims the rest of the suite leans on — agreement with exhaustive
enumeration on small instances, never losing to any heuristic backend on
instances it proves, strict tolerance unless it explicitly flags a
relaxation, and bit-level seed determinism.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExactBudgetExceeded, PartitionError
from repro.graph import CSRGraph
from repro.partition import (
    DualRecursiveBipartitioner,
    ExactPartitioner,
    MultilevelKWay,
    MultilevelKWayKL,
    SpectralPartitioner,
    TargetArchitecture,
    edge_cut,
)

TOL = 0.05
HEURISTICS = [
    DualRecursiveBipartitioner,
    MultilevelKWay,
    MultilevelKWayKL,
    SpectralPartitioner,
]


@st.composite
def small_graphs(draw, max_vertices=10, max_edges=24, zero_weights=True):
    """Small weighted graphs, optionally with zero-weight (ordering) edges."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    weight = st.one_of(
        st.just(0.0) if zero_weights else st.just(1.0),
        st.floats(min_value=0.1, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
    )
    edges = []
    for _ in range(n_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        edges.append((u, v, draw(weight)))
    vwgt = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.1, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n,
            )
        )
    )
    return CSRGraph.from_edges(n, edges, vwgt)


def _strict_caps(graph, k):
    return (1.0 + TOL) * graph.vwgt.sum() * np.full(k, 1.0 / k)


def _brute_force(graph, k, dist=None):
    """Exhaustively minimise the objective over strictly feasible
    assignments; returns (best_cost, found_any_feasible)."""
    n = graph.n_vertices
    vwgt = graph.vwgt
    caps = _strict_caps(graph, k)
    eps = 1e-9 * max(float(vwgt.sum()), 1.0)
    if dist is None:
        dist = np.ones((k, k))
        np.fill_diagonal(dist, 0.0)
    assigns = np.array(list(itertools.product(range(k), repeat=n)),
                       dtype=np.int64)
    loads = np.zeros((len(assigns), k))
    for p in range(k):
        loads[:, p] = (assigns == p) @ vwgt
    feasible = np.all(loads <= caps + eps, axis=1)
    if not feasible.any():
        return None, False
    assigns = assigns[feasible]
    cost = np.zeros(len(assigns))
    src = np.repeat(np.arange(n), np.diff(graph.xadj))
    for u, v, w in zip(src, graph.adjncy, graph.adjwgt):
        if u < v:
            cost += w * dist[assigns[:, u], assigns[:, v]]
    return float(cost.min()), True


@given(small_graphs(), st.integers(min_value=2, max_value=3),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40, deadline=None)
def test_agrees_with_brute_force(graph, k, seed):
    k = min(k, graph.n_vertices)
    best, feasible = _brute_force(graph, k)
    res = ExactPartitioner(tolerance=TOL, budget=500_000).partition(
        graph, k, seed=seed
    )
    assert res.meta["exact"], "oracle budget must cover n <= 10"
    if feasible:
        assert not res.meta["tolerance_relaxed"]
        np.testing.assert_allclose(res.meta["objective"], best, rtol=1e-9)
        np.testing.assert_allclose(
            edge_cut(graph, res.parts), best, rtol=1e-9
        )
    else:
        # No strictly feasible assignment exists: the oracle must say so.
        assert res.meta["tolerance_relaxed"]


@given(small_graphs(max_vertices=20, max_edges=48),
       st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_exact_never_loses_to_heuristics(graph, k, seed):
    k = min(k, graph.n_vertices)
    res = ExactPartitioner(tolerance=TOL, budget=30_000).partition(
        graph, k, seed=seed
    )
    if not res.meta["exact"] or res.meta["tolerance_relaxed"]:
        return  # nothing proven on this instance
    caps = _strict_caps(graph, k)
    eps = 1e-9 * max(float(graph.vwgt.sum()), 1.0)
    for cls in HEURISTICS:
        h = cls(tolerance=TOL).partition(graph, k, seed=seed)
        loads = np.bincount(h.parts, weights=graph.vwgt, minlength=k)
        if np.any(loads > caps + eps):
            continue  # heuristic used granularity slack: not comparable
        assert res.meta["objective"] <= edge_cut(graph, h.parts) + 1e-9


@given(small_graphs(max_vertices=14, max_edges=32),
       st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_tolerance_respected_unless_flagged(graph, k, seed):
    k = min(k, graph.n_vertices)
    res = ExactPartitioner(tolerance=TOL, budget=60_000).partition(
        graph, k, seed=seed
    )
    loads = np.bincount(res.parts, weights=graph.vwgt, minlength=k)
    caps = _strict_caps(graph, k)
    eps = 1e-9 * max(float(graph.vwgt.sum()), 1.0)
    if not res.meta["tolerance_relaxed"]:
        assert np.all(loads <= caps + eps)
    # Contract: ids in range, total assignment.
    assert len(res.parts) == graph.n_vertices
    assert res.parts.min() >= 0 and res.parts.max() < k
    if res.meta["exact"] and not res.meta["tolerance_relaxed"]:
        # Strict caps leave too little room for k-1 parts to hold all the
        # weight (k <= 20), so no part may be empty when n >= k.
        assert len(np.unique(res.parts)) == k


@given(small_graphs(max_vertices=12, max_edges=28),
       st.integers(min_value=2, max_value=3),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_seed_determinism(graph, k, seed):
    k = min(k, graph.n_vertices)
    oracle = ExactPartitioner(tolerance=TOL, budget=100_000)
    a = oracle.partition(graph, k, seed=seed)
    b = oracle.partition(graph, k, seed=seed)
    assert np.array_equal(a.parts, b.parts)
    assert a.meta == b.meta


def test_proven_objective_is_seed_invariant():
    g = CSRGraph.from_edges(
        6,
        [(0, 1, 4.0), (1, 2, 1.0), (2, 3, 4.0), (3, 4, 1.0), (4, 5, 4.0)],
        np.ones(6),
    )
    oracle = ExactPartitioner(tolerance=TOL)
    objs = {
        oracle.partition(g, 2, seed=s).meta["objective"] for s in range(5)
    }
    assert len(objs) == 1  # the optimum does not depend on the seed


class TestMappingCost:
    def test_agrees_with_brute_force_on_target(self):
        rng = np.random.default_rng(7)
        for trial in range(10):
            n = int(rng.integers(4, 9))
            k = int(rng.integers(2, 4))
            edges = [
                (int(u), int(v), float(rng.uniform(0.5, 9.0)))
                for u in range(n) for v in range(u + 1, n)
                if rng.random() < 0.4
            ]
            g = CSRGraph.from_edges(n, edges, rng.uniform(0.5, 2.0, n))
            d = rng.uniform(1.0, 5.0, (k, k))
            d = (d + d.T) / 2.0
            np.fill_diagonal(d, 0.0)
            target = TargetArchitecture(distance=d, capacity=np.ones(k))
            best, feasible = _brute_force(g, k, dist=d)
            res = ExactPartitioner(tolerance=TOL).partition(
                g, k, target=target, seed=trial
            )
            assert res.meta["exact"]
            if feasible:
                np.testing.assert_allclose(
                    res.meta["objective"], best, rtol=1e-9
                )


class TestBudget:
    def _hard_instance(self):
        rng = np.random.default_rng(3)
        n = 26
        edges = [
            (int(u), int(v), float(rng.uniform(1.0, 9.0)))
            for u in range(n) for v in range(u + 1, n)
            if rng.random() < 0.5
        ]
        return CSRGraph.from_edges(n, edges, rng.uniform(0.5, 2.0, n))

    def test_fallback_flags_budget_exhaustion(self):
        g = self._hard_instance()
        res = ExactPartitioner(tolerance=TOL, budget=200).partition(
            g, 4, seed=0
        )
        assert res.meta["exact"] is False
        assert res.meta["budget_exhausted"] is True
        assert res.parts.min() >= 0 and res.parts.max() < 4
        # Degraded answer is never worse than its own fallback heuristic.
        heur = MultilevelKWay(tolerance=TOL).partition(g, 4, seed=0)
        assert res.meta["objective"] <= edge_cut(g, heur.parts) + 1e-9

    def test_raise_mode(self):
        g = self._hard_instance()
        oracle = ExactPartitioner(tolerance=TOL, budget=200, on_budget="raise")
        with pytest.raises(ExactBudgetExceeded):
            oracle.partition(g, 4, seed=0)

    def test_budget_validation(self):
        with pytest.raises(PartitionError):
            ExactPartitioner(budget=0)
        with pytest.raises(PartitionError):
            ExactPartitioner(on_budget="panic")


class TestEdges:
    def test_k1_is_trivially_exact(self):
        g = CSRGraph.from_edges(3, [(0, 1, 1.0)], np.ones(3))
        res = ExactPartitioner().partition(g, 1, seed=0)
        assert set(res.parts) == {0}
        assert res.meta["exact"] and res.meta["objective"] == 0.0

    def test_oversized_k_raises(self):
        g = CSRGraph.from_edges(2, [], np.ones(2))
        with pytest.raises(PartitionError, match="cannot partition"):
            ExactPartitioner().partition(g, 3)

    def test_relaxation_on_giant_vertex(self):
        # One vertex heavier than any part's strict allowance: the oracle
        # must relax (and say so) rather than fail or violate silently.
        g = CSRGraph.from_edges(
            3, [(0, 1, 1.0), (1, 2, 1.0)], np.array([10.0, 0.5, 0.5])
        )
        res = ExactPartitioner(tolerance=TOL).partition(g, 3, seed=0)
        assert res.meta["tolerance_relaxed"]
        assert res.parts.min() >= 0 and res.parts.max() < 3
