"""Tests for the paper's contribution: RGP window machinery and schedulers."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_WINDOW_SIZE,
    RGPLASScheduler,
    RGPScheduler,
    initial_window,
    partition_window,
)
from repro.errors import SchedulerError
from repro.graph import independent_chains
from repro.machine import bullion_s16
from repro.partition import DualRecursiveBipartitioner, RandomPartitioner
from repro.runtime import Simulator, TaskProgram, simulate
from repro.schedulers import make_scheduler


def chains_program(n_chains=16, length=8, nbytes=65536):
    p = TaskProgram("chains")
    for c in range(n_chains):
        a = p.data(f"a{c}", nbytes)
        p.task(f"init{c}", outs=[a], work=0.1)
        for i in range(length):
            p.task(f"t{c}_{i}", inouts=[a], work=0.1)
    return p.finalize()


class TestWindow:
    def test_initial_window_size_limit(self):
        p = chains_program(4, 10)
        assert initial_window(p, 7) == 7

    def test_initial_window_barrier_trigger(self):
        p = TaskProgram()
        for _ in range(5):
            p.task()
        p.barrier()
        for _ in range(5):
            p.task()
        assert initial_window(p.finalize(), 1000) == 5

    def test_initial_window_bad_size(self):
        with pytest.raises(SchedulerError):
            initial_window(chains_program(1, 1), 0)

    def test_partition_window_covers_prefix(self, topo8):
        p = chains_program(16, 8)
        plan = partition_window(p.tdg, 64, topo8,
                                DualRecursiveBipartitioner(), seed=0)
        assert plan.cutoff == 64
        assert len(plan.assignment) == 64
        assert plan.assignment.max() < 8

    def test_partition_window_groups_chains(self, topo8):
        """Tasks of one chain must land on one socket (zero-cut optimum)."""
        p = chains_program(16, 8)
        n_per_chain = 9
        plan = partition_window(p.tdg, p.n_tasks, topo8,
                                DualRecursiveBipartitioner(), seed=1)
        for c in range(16):
            sockets = set(plan.assignment[c * n_per_chain:(c + 1) * n_per_chain])
            assert len(sockets) == 1


class TestRGPScheduler:
    def test_window_tasks_follow_partition(self, topo8):
        p = chains_program(8, 6)
        sched = RGPScheduler(window_size=p.n_tasks, partition_seed=7)
        res = simulate(p, topo8, sched, seed=0, steal=False)
        # Every chain executes on a single socket.
        per_chain = {}
        for r in res.records:
            chain = r.tid // 7
            per_chain.setdefault(chain, set()).add(r.socket)
        assert all(len(s) == 1 for s in per_chain.values())

    def test_propagation_beyond_window(self, topo8):
        p = chains_program(8, 10)
        sched = RGPLASScheduler(window_size=16, partition_seed=3)
        res = simulate(p, topo8, sched, seed=0, steal=False)
        assert res.n_tasks == p.n_tasks

    def test_las_propagation_keeps_chain_locality(self, topo8):
        """With an interleaved creation order the window holds one task per
        chain; LAS propagation then keeps every later task on its chain's
        socket, so remote traffic stays negligible."""
        p = TaskProgram("interleaved-chains")
        objs = []
        for c in range(8):
            a = p.data(f"a{c}", 65536)
            p.task(f"init{c}", outs=[a], work=0.1)
            objs.append(a)
        for it in range(10):
            for c in range(8):
                p.task(f"t{c}_{it}", inouts=[objs[c]], work=0.1)
        res = simulate(p.finalize(), topo8,
                       RGPLASScheduler(window_size=16, partition_seed=3),
                       seed=0, steal=False, duration_jitter=0.0)
        assert res.remote_fraction < 0.05

    def test_small_window_fragments_chains(self, topo8):
        """A window far smaller than the parallel width chops chains into
        segments — RGP then pays remote handoffs (a real RGP property)."""
        p = chains_program(8, 10)
        res = simulate(p, topo8, RGPLASScheduler(window_size=16,
                                                 partition_seed=3),
                       seed=0, steal=False, duration_jitter=0.0)
        full = simulate(p, topo8, RGPLASScheduler(window_size=p.n_tasks,
                                                  partition_seed=3),
                        seed=0, steal=False, duration_jitter=0.0)
        assert full.remote_fraction <= res.remote_fraction

    def test_partition_delay_parks_tasks(self, topo8):
        p = chains_program(8, 4)
        sched = RGPLASScheduler(window_size=p.n_tasks, partition_delay=2.0,
                                partition_seed=1)
        res = simulate(p, topo8, sched, seed=0)
        assert res.parked_tasks > 0
        # Nothing can finish before the partition is available.
        assert min(r.finish for r in res.records) >= 2.0

    def test_zero_delay_parks_nothing(self, topo8):
        p = chains_program(8, 4)
        res = simulate(p, topo8, RGPLASScheduler(window_size=64), seed=0)
        assert res.parked_tasks == 0

    def test_propagation_policies_run(self, topo8):
        p = chains_program(6, 6)
        for prop in ("las", "repartition", "cyclic", "random"):
            sched = RGPScheduler(window_size=16, propagation=prop,
                                 partition_seed=0)
            res = simulate(p, topo8, sched, seed=0)
            assert res.n_tasks == p.n_tasks

    def test_repartition_counts_windows(self, topo8):
        p = chains_program(8, 10)  # 88 tasks
        sched = RGPScheduler(window_size=22, propagation="repartition",
                             partition_seed=0)
        simulate(p, topo8, sched, seed=0)
        assert sched.windows_partitioned >= 3

    def test_bad_propagation(self):
        with pytest.raises(SchedulerError):
            RGPScheduler(propagation="telepathy")

    def test_bad_window(self):
        with pytest.raises(SchedulerError):
            RGPScheduler(window_size=0)

    def test_bad_delay(self):
        with pytest.raises(SchedulerError):
            RGPScheduler(partition_delay=-1.0)

    def test_custom_partitioner_used(self, topo8):
        p = chains_program(8, 6)
        a = simulate(p, topo8, RGPLASScheduler(
            window_size=p.n_tasks, partition_seed=5,
            partitioner=DualRecursiveBipartitioner()), seed=0,
            duration_jitter=0.0, steal=False)
        b = simulate(p, topo8, RGPLASScheduler(
            window_size=p.n_tasks, partition_seed=5,
            partitioner=RandomPartitioner()), seed=0,
            duration_jitter=0.0, steal=False)
        # DRB keeps chains whole -> strictly less remote traffic than random.
        assert a.remote_fraction < b.remote_fraction

    def test_default_window_size(self):
        assert RGPScheduler().window_size == DEFAULT_WINDOW_SIZE

    def test_rgp_las_name(self):
        assert RGPLASScheduler().name == "rgp+las"
        assert RGPLASScheduler().propagation == "las"

    def test_barrier_closes_window_early(self, topo8):
        """With a barrier before the window limit, only the pre-barrier
        prefix is statically assigned."""
        p = TaskProgram()
        objs = []
        for i in range(8):
            a = p.data(f"a{i}", 65536)
            p.task(outs=[a], work=0.1)
            objs.append(a)
        p.barrier()
        for a in objs:
            p.task(ins=[a], work=0.1)
        prog = p.finalize()
        sched = RGPLASScheduler(window_size=1000, partition_seed=0)
        simulate(prog, topo8, sched, seed=0)
        assert sched._cutoff == 8
