"""Tests for Kernighan-Lin refinement and the multilevel-KL variant."""

import numpy as np
import pytest

from repro.graph import CSRGraph, grid_graph, independent_chains
from repro.partition import (
    MultilevelKWayKL,
    RandomPartitioner,
    edge_cut,
    imbalance,
    kl_bisection_refine,
)


@pytest.fixture
def grid():
    return CSRGraph.from_tdg(grid_graph(8, 8))


class TestKLRefine:
    def test_improves_random_bisection(self, grid):
        rng = np.random.default_rng(0)
        parts = (np.arange(grid.n_vertices) % 2).astype(np.int64)
        rng.shuffle(parts)
        refined = kl_bisection_refine(grid, parts)
        assert edge_cut(grid, refined) < edge_cut(grid, parts)

    def test_preserves_balance_exactly(self, grid):
        """Pair swaps keep side sizes invariant — KL's defining property."""
        rng = np.random.default_rng(1)
        parts = (np.arange(grid.n_vertices) % 2).astype(np.int64)
        rng.shuffle(parts)
        n0_before = int((parts == 0).sum())
        refined = kl_bisection_refine(grid, parts)
        assert int((refined == 0).sum()) == n0_before

    def test_does_not_mutate_input(self, grid):
        parts = (np.arange(grid.n_vertices) % 2).astype(np.int64)
        snapshot = parts.copy()
        kl_bisection_refine(grid, parts)
        assert np.array_equal(parts, snapshot)

    def test_never_worsens(self, grid):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            parts = (np.arange(grid.n_vertices) % 2).astype(np.int64)
            rng.shuffle(parts)
            before = edge_cut(grid, parts)
            assert edge_cut(grid, kl_bisection_refine(grid, parts)) <= before

    def test_tiny_graph(self):
        g = CSRGraph.from_edges(1, [])
        out = kl_bisection_refine(g, np.zeros(1, dtype=np.int64))
        assert list(out) == [0]


class TestMultilevelKL:
    def test_partition_contract(self, grid):
        res = MultilevelKWayKL().partition(grid, 4, seed=0)
        assert res.parts.min() >= 0 and res.parts.max() < 4
        assert imbalance(grid, res.parts, 4) < 0.6

    def test_beats_random(self, grid):
        kl_cut = edge_cut(grid, MultilevelKWayKL().partition(grid, 4, seed=0).parts)
        rnd_cut = edge_cut(grid, RandomPartitioner().partition(grid, 4, seed=0).parts)
        assert kl_cut < rnd_cut

    def test_zero_cut_on_chains(self):
        g = CSRGraph.from_tdg(independent_chains(8, 8))
        res = MultilevelKWayKL().partition(g, 4, seed=0)
        assert edge_cut(g, res.parts) == 0.0
