"""Unit tests for the RGP window helpers (complementing test_core_rgp)."""

import numpy as np
import pytest

from repro.core.window import WindowPlan, initial_window, partition_window
from repro.errors import SchedulerError
from repro.graph import independent_chains
from repro.machine import bullion_s16, two_socket
from repro.partition import DualRecursiveBipartitioner
from repro.runtime import TaskProgram


class TestPartitionWindow:
    def test_zero_cutoff(self, topo8):
        tdg = independent_chains(4, 4)
        plan = partition_window(tdg, 0, topo8, DualRecursiveBipartitioner())
        assert plan.cutoff == 0
        assert len(plan.assignment) == 0

    def test_cutoff_clamps_to_graph(self, topo8):
        tdg = independent_chains(2, 3)  # 6 nodes
        plan = partition_window(tdg, 100, topo8, DualRecursiveBipartitioner())
        assert len(plan.assignment) == 6

    def test_negative_cutoff_rejected(self, topo8):
        tdg = independent_chains(2, 3)
        with pytest.raises(SchedulerError):
            partition_window(tdg, -1, topo8, DualRecursiveBipartitioner())

    def test_two_socket_target(self):
        topo = two_socket()
        tdg = independent_chains(8, 6)
        plan = partition_window(tdg, tdg.n_nodes, topo,
                                DualRecursiveBipartitioner(), seed=1)
        counts = np.bincount(plan.assignment, minlength=2)
        assert abs(counts[0] - counts[1]) <= 6  # one chain of slack

    def test_plan_is_frozen_dataclass(self, topo8):
        tdg = independent_chains(2, 2)
        plan = partition_window(tdg, 4, topo8, DualRecursiveBipartitioner())
        assert isinstance(plan, WindowPlan)
        with pytest.raises(AttributeError):
            plan.cutoff = 7


class TestInitialWindow:
    def test_program_without_barriers(self):
        p = TaskProgram()
        for _ in range(30):
            p.task()
        assert initial_window(p.finalize(), 12) == 12

    def test_empty_program(self):
        assert initial_window(TaskProgram().finalize(), 10) == 0

    def test_barrier_beats_window(self):
        p = TaskProgram()
        p.task()
        p.task()
        p.barrier()
        for _ in range(10):
            p.task()
        prog = p.finalize()
        assert initial_window(prog, 8) == 2
        assert initial_window(prog, 1) == 1
