"""Hypothesis properties of the adaptive window controller (DESIGN.md §10).

The control law and the boundary tracker carry three contracts the rest of
the pipelined-RGP machinery leans on:

* the next size (and the steady-state target ``W*``) always lands in
  ``[AUTO_MIN_WINDOW, AUTO_MAX_WINDOW]``;
* geometric damping moves *monotonically toward* the clamped target and
  never overshoots it;
* resizing ``next_size`` never moves a window boundary that was already
  materialised — only future windows feel the controller.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window import (
    AUTO_MAX_WINDOW,
    AUTO_MIN_WINDOW,
    WindowTracker,
    next_auto_window_size,
    resolve_window_size,
)
from repro.errors import SchedulerError

sizes = st.integers(1, 4 * AUTO_MAX_WINDOW)
throughputs = st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False)
delays = st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False)
fractions = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)

_SETTINGS = settings(max_examples=200, deadline=None)


def _clamped_target(throughput, delay, threshold):
    import math

    hide = max(1.0 - threshold, 0.05)
    target = math.ceil(throughput * delay / hide)
    return max(AUTO_MIN_WINDOW, min(AUTO_MAX_WINDOW, target))


# ----------------------------------------------------------------------
# The control law
# ----------------------------------------------------------------------
@_SETTINGS
@given(current=sizes, lam=throughputs, delay=delays, f=fractions)
def test_next_size_always_in_clamp_range(current, lam, delay, f):
    nxt = next_auto_window_size(current, lam, delay, f)
    if lam <= 0.0 or delay <= 0.0:
        assert nxt == current  # no signal: hold the window
    else:
        assert AUTO_MIN_WINDOW <= nxt <= AUTO_MAX_WINDOW


@_SETTINGS
@given(current=st.integers(AUTO_MIN_WINDOW, AUTO_MAX_WINDOW),
       lam=st.floats(1e-6, 1e6, allow_nan=False, allow_infinity=False),
       delay=st.floats(1e-6, 1e3, allow_nan=False, allow_infinity=False),
       f=fractions)
def test_damping_moves_toward_target_without_overshoot(current, lam, delay, f):
    target = _clamped_target(lam, delay, f)
    nxt = next_auto_window_size(current, lam, delay, f)
    lo, hi = min(current, target), max(current, target)
    assert lo <= nxt <= hi  # never overshoots either side
    if abs(target - current) >= 2:
        assert abs(nxt - target) < abs(current - target)  # strictly closer


@_SETTINGS
@given(current=st.integers(AUTO_MIN_WINDOW, AUTO_MAX_WINDOW),
       lam=st.floats(1e-6, 1e6, allow_nan=False, allow_infinity=False),
       delay=st.floats(1e-6, 1e3, allow_nan=False, allow_infinity=False),
       f=fractions)
def test_fixed_point_at_target(current, lam, delay, f):
    """Iterating the law converges: the target is its only fixed point."""
    target = _clamped_target(lam, delay, f)
    size = current
    for _ in range(64):
        size = next_auto_window_size(size, lam, delay, f)
    assert abs(size - target) <= 1
    assert next_auto_window_size(target, lam, delay, f) == target


# ----------------------------------------------------------------------
# The boundary tracker
# ----------------------------------------------------------------------
@_SETTINGS
@given(
    n_tasks=st.integers(1, 2000),
    data=st.data(),
)
def test_resize_never_moves_materialised_boundaries(n_tasks, data):
    cutoff = data.draw(st.integers(0, n_tasks))
    tracker = WindowTracker(
        cutoff, n_tasks, data.draw(st.integers(1, 256))
    )
    for _ in range(data.draw(st.integers(0, 8))):
        frozen = list(tracker.bounds)
        # Interleave lookups (which materialise) with resizes.
        tid = data.draw(st.integers(0, n_tasks - 1))
        tracker.index_of(tid)
        assert tracker.bounds[: len(frozen)] == frozen
        tracker.next_size = data.draw(st.integers(1, 256))
    # Boundaries are strictly increasing except a possibly-empty window 0,
    # and never exceed the program end.
    assert tracker.bounds[0] == 0
    assert all(b2 >= b1 for b1, b2 in zip(tracker.bounds, tracker.bounds[1:]))
    assert all(
        b2 > b1 for b1, b2 in zip(tracker.bounds[1:], tracker.bounds[2:])
    )
    assert tracker.bounds[-1] <= n_tasks


@_SETTINGS
@given(
    n_tasks=st.integers(1, 2000),
    cutoff_frac=st.floats(0.0, 1.0, allow_nan=False),
    size=st.integers(1, 256),
    tid=st.integers(0, 1999),
)
def test_index_and_span_are_consistent(n_tasks, cutoff_frac, size, tid):
    tid = tid % n_tasks
    cutoff = int(cutoff_frac * n_tasks)
    tracker = WindowTracker(cutoff, n_tasks, size)
    window = tracker.index_of(tid)
    lo, hi = tracker.span(window)
    assert lo <= tid < hi


@_SETTINGS
@given(size=st.integers(1, 64), n_tasks=st.integers(1, 500),
       cutoff=st.integers(0, 500))
def test_constant_size_reduces_to_arithmetic(size, n_tasks, cutoff):
    """With a constant next_size the bounds are cutoff + i*size (inertness)."""
    cutoff = min(cutoff, n_tasks)
    tracker = WindowTracker(cutoff, n_tasks, size)
    tracker.index_of(n_tasks - 1)  # materialise everything
    for i, b in enumerate(tracker.bounds[1:], start=0):
        assert b == min(cutoff + i * size, n_tasks)


def test_resolve_window_size_contract():
    assert resolve_window_size("auto") == AUTO_MIN_WINDOW
    assert resolve_window_size(128) == 128
    with pytest.raises(SchedulerError):
        resolve_window_size(0)


def test_tracker_rejects_bad_construction():
    with pytest.raises(SchedulerError):
        WindowTracker(-1, 10, 4)
    with pytest.raises(SchedulerError):
        WindowTracker(11, 10, 4)
    with pytest.raises(SchedulerError):
        WindowTracker(0, 10, 0)
    with pytest.raises(SchedulerError):
        WindowTracker(0, 10, 4).index_of(10)
