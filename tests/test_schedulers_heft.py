"""Tests for the HEFT static list-scheduling baseline."""

import numpy as np
import pytest

from repro.machine import bullion_s16, two_socket
from repro.runtime import TaskProgram, execute_in_order, simulate
from repro.schedulers import HEFTScheduler, make_scheduler


class TestPlan:
    def test_plan_covers_all_tasks(self, topo8):
        from repro.apps import make_app

        prog = make_app("jacobi", nt=3, tile=8, sweeps=2).build(8)
        sched = HEFTScheduler()
        simulate(prog, topo8, sched, seed=0)
        assert set(sched.plan) == set(range(prog.n_tasks))
        assert all(0 <= s < 8 for s in sched.plan.values())

    def test_independent_tasks_spread(self, topo8):
        """With 32 equal independent tasks, EFT fills all sockets."""
        p = TaskProgram()
        for _ in range(32):
            p.task(work=1.0)
        sched = HEFTScheduler()
        simulate(p.finalize(), topo8, sched, seed=0, steal=False)
        used = set(sched.plan.values())
        assert len(used) == 8

    def test_chain_stays_on_one_socket(self, topo8):
        """A single dependence chain has no parallelism: moving it would
        only add communication, so HEFT keeps it in one place."""
        p = TaskProgram()
        a = p.data("a", 262144)
        p.task(outs=[a], work=0.5)
        for _ in range(10):
            p.task(inouts=[a], work=0.5)
        sched = HEFTScheduler()
        simulate(p.finalize(), topo8, sched, seed=0, steal=False)
        assert len(set(sched.plan.values())) == 1

    def test_rank_prioritises_critical_path(self, topo8):
        """The long chain's head must be planned before side tasks can
        displace it: the chain finishes without waiting behind the
        independent filler tasks on its socket."""
        p = TaskProgram()
        a = p.data("a", 4096)
        p.task("head", outs=[a], work=1.0)
        for i in range(6):
            p.task(f"link{i}", inouts=[a], work=1.0)
        for i in range(4):
            p.task(f"filler{i}", work=0.5)
        res = simulate(p.finalize(), topo8, HEFTScheduler(), seed=0,
                       steal=False, duration_jitter=0.0)
        rec = {r.name: r for r in res.records}
        assert rec["head"].start == pytest.approx(0.0, abs=1e-9)


class TestBehaviour:
    def test_valid_schedules_on_apps(self, topo8):
        from repro.apps import make_app
        from repro.runtime import validate_schedule

        for name, params in (("nstream", dict(n_blocks=8, block_elems=1024,
                                               iterations=3)),
                             ("symminv", dict(nt=3, tile=8))):
            prog = make_app(name, **params).build(8)
            res = simulate(prog, topo8, make_scheduler("heft"), seed=0)
            validate_schedule(prog, res, topo8)

    def test_numerics_preserved(self, topo8):
        from repro.apps import make_app

        app = make_app("cg", nt=2, tile=8, iterations=3)
        prog = app.build(8, with_payload=True)
        res = simulate(prog, topo8, make_scheduler("heft"), seed=1)
        execute_in_order(prog, res.completion_order())
        assert app.verify() < 1e-10

    def test_deterministic(self, topo8):
        from repro.apps import make_app

        prog = make_app("jacobi", nt=3, tile=8, sweeps=2).build(8)
        a = simulate(prog, topo8, make_scheduler("heft"), seed=4)
        b = simulate(prog, topo8, make_scheduler("heft"), seed=4)
        assert a.makespan == b.makespan
