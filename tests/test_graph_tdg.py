"""Unit tests for the incremental task dependency graph."""

import pytest

from repro.errors import GraphError
from repro.graph import TaskGraph


@pytest.fixture
def diamond():
    """0 -> {1, 2} -> 3 with byte weights."""
    g = TaskGraph()
    for _ in range(4):
        g.add_node(1.0)
    g.add_edge(0, 1, 100.0)
    g.add_edge(0, 2, 200.0)
    g.add_edge(1, 3, 300.0)
    g.add_edge(2, 3, 400.0)
    return g


class TestConstruction:
    def test_ids_dense_in_creation_order(self):
        g = TaskGraph()
        assert [g.add_node() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_counts(self, diamond):
        assert diamond.n_nodes == 4
        assert diamond.n_edges == 4
        assert diamond.total_edge_weight == 1000.0

    def test_parallel_edges_coalesce(self):
        g = TaskGraph()
        g.add_node()
        g.add_node()
        g.add_edge(0, 1, 10.0)
        g.add_edge(0, 1, 5.0)
        assert g.n_edges == 1
        assert g.edge_weight(0, 1) == 15.0

    def test_backward_edge_rejected(self):
        g = TaskGraph()
        g.add_node()
        g.add_node()
        with pytest.raises(GraphError, match="backwards"):
            g.add_edge(1, 0)

    def test_self_edge_rejected(self):
        g = TaskGraph()
        g.add_node()
        with pytest.raises(GraphError, match="self"):
            g.add_edge(0, 0)

    def test_negative_weight_rejected(self):
        g = TaskGraph()
        g.add_node()
        g.add_node()
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -1.0)
        with pytest.raises(GraphError):
            g.add_node(weight=-1.0)

    def test_unknown_node_rejected(self, diamond):
        with pytest.raises(GraphError):
            diamond.add_edge(0, 9)

    def test_set_node_weight(self, diamond):
        diamond.set_node_weight(2, 7.5)
        assert diamond.node_weight(2) == 7.5


class TestQueries:
    def test_neighbours(self, diamond):
        assert diamond.successors(0) == {1: 100.0, 2: 200.0}
        assert diamond.predecessors(3) == {1: 300.0, 2: 400.0}

    def test_degrees(self, diamond):
        assert diamond.in_degree(0) == 0
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(3) == 2

    def test_has_edge(self, diamond):
        assert diamond.has_edge(0, 1)
        assert not diamond.has_edge(1, 2)

    def test_edge_weight_missing(self, diamond):
        with pytest.raises(GraphError):
            diamond.edge_weight(1, 2)

    def test_roots_and_leaves(self, diamond):
        assert diamond.roots() == [0]
        assert diamond.leaves() == [3]

    def test_edges_iteration(self, diamond):
        edges = sorted(diamond.edges())
        assert edges == [
            (0, 1, 100.0), (0, 2, 200.0), (1, 3, 300.0), (2, 3, 400.0)
        ]

    def test_labels(self):
        g = TaskGraph()
        g.add_node(label="potrf")
        assert g.label(0) == "potrf"


class TestDerivedGraphs:
    def test_prefix(self, diamond):
        sub = diamond.prefix(3)
        assert sub.n_nodes == 3
        assert sub.has_edge(0, 1) and sub.has_edge(0, 2)
        assert sub.n_edges == 2  # edges into node 3 dropped

    def test_prefix_clamps(self, diamond):
        assert diamond.prefix(100).n_nodes == 4

    def test_prefix_zero(self, diamond):
        assert diamond.prefix(0).n_nodes == 0

    def test_prefix_negative_rejected(self, diamond):
        with pytest.raises(GraphError):
            diamond.prefix(-1)

    def test_subgraph_remaps_ids(self, diamond):
        sub, old = diamond.subgraph([1, 3])
        assert old == [1, 3]
        assert sub.n_nodes == 2
        assert sub.has_edge(0, 1)  # old 1->3
        assert sub.edge_weight(0, 1) == 300.0

    def test_subgraph_preserves_weights(self, diamond):
        diamond.set_node_weight(3, 9.0)
        sub, old = diamond.subgraph([2, 3])
        assert sub.node_weight(1) == 9.0

    def test_to_networkx(self, diamond):
        nx_g = diamond.to_networkx()
        assert nx_g.number_of_nodes() == 4
        assert nx_g.number_of_edges() == 4
        assert nx_g[0][1]["weight"] == 100.0

    def test_repr(self, diamond):
        assert "n_nodes=4" in repr(diamond)
