"""Property-based tests for the memory manager (hypothesis).

Random sequences of register/touch/bind/migrate/interleave must preserve
the accounting invariants: per-node byte counters always equal the page
map, placements always sum to the queried range, and first-touch never
moves a bound page.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import UNBOUND, MemoryManager

N_NODES = 4
PAGE = 4096


@st.composite
def op_sequences(draw, max_objects=4, max_ops=30):
    n_objects = draw(st.integers(min_value=1, max_value=max_objects))
    sizes = [
        draw(st.integers(min_value=1, max_value=10 * PAGE))
        for _ in range(n_objects)
    ]
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_ops))):
        kind = draw(st.sampled_from(["touch", "bind", "migrate", "interleave"]))
        key = draw(st.integers(min_value=0, max_value=n_objects - 1))
        node = draw(st.integers(min_value=0, max_value=N_NODES - 1))
        offset = draw(st.integers(min_value=0, max_value=max(0, sizes[key] - 1)))
        length = draw(st.integers(min_value=0,
                                  max_value=sizes[key] - offset))
        ops.append((kind, key, node, offset, length))
    return sizes, ops


def apply_ops(sizes, ops):
    mm = MemoryManager(N_NODES, page_size=PAGE)
    for key, size in enumerate(sizes):
        mm.register(key, size)
    for kind, key, node, offset, length in ops:
        if kind == "touch":
            mm.touch(key, node, offset, length)
        elif kind == "bind":
            mm.bind(key, node, offset, length)
        elif kind == "migrate":
            mm.migrate(key, node)
        else:
            mm.interleave(key, [node, (node + 1) % N_NODES])
    return mm


@given(op_sequences())
@settings(max_examples=80, deadline=None)
def test_byte_counters_match_page_map(seq):
    sizes, ops = seq
    mm = apply_ops(sizes, ops)
    recount = np.zeros(N_NODES, dtype=np.int64)
    for key in range(len(sizes)):
        pages = mm.page_nodes(key)
        for node in range(N_NODES):
            recount[node] += int((pages == node).sum()) * PAGE
    assert np.array_equal(recount, mm.bytes_on_node)


@given(op_sequences())
@settings(max_examples=80, deadline=None)
def test_range_query_sums_to_length(seq):
    sizes, ops = seq
    mm = apply_ops(sizes, ops)
    for key, size in enumerate(sizes):
        pl = mm.node_bytes_of_range(key)
        assert pl.bytes_per_node.sum() + pl.unbound_bytes == size


@given(op_sequences(), st.integers(min_value=0, max_value=N_NODES - 1))
@settings(max_examples=60, deadline=None)
def test_first_touch_never_moves_bound_pages(seq, node):
    sizes, ops = seq
    mm = apply_ops(sizes, ops)
    before = {k: mm.page_nodes(k).copy() for k in range(len(sizes))}
    for key in range(len(sizes)):
        mm.touch(key, node)
    for key in range(len(sizes)):
        after = mm.page_nodes(key)
        bound_before = before[key] != UNBOUND
        assert np.array_equal(after[bound_before], before[key][bound_before])
        assert np.all(after != UNBOUND)


@given(op_sequences())
@settings(max_examples=60, deadline=None)
def test_reset_restores_clean_state(seq):
    sizes, ops = seq
    mm = apply_ops(sizes, ops)
    mm.reset_placement()
    assert mm.bytes_on_node.sum() == 0
    for key in range(len(sizes)):
        assert np.all(mm.page_nodes(key) == UNBOUND)
