"""Tests for the generic parameter-sweep harness."""

import csv

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    ParameterGrid,
    run_sweep,
    write_sweep_csv,
)

TINY = {
    "nstream": dict(n_blocks=6, block_elems=1024, iterations=2),
    "jacobi": dict(nt=3, tile=16, sweeps=2),
}


def tiny_config():
    return ExperimentConfig(app_params=TINY, seeds=(0,), window_size=16)


class TestGrid:
    def test_cartesian_size(self):
        grid = ParameterGrid(app=["a", "b"], policy=["x"], k=[1, 2, 3])
        assert len(grid) == 6
        assert len(list(grid.points())) == 6

    def test_points_carry_all_axes(self):
        grid = ParameterGrid(app=["a"], policy=["x"], k=[1])
        (point,) = grid.points()
        assert point == {"app": "a", "policy": "x", "k": 1}

    def test_requires_app_and_policy(self):
        with pytest.raises(ExperimentError):
            ParameterGrid(app=["a"])

    def test_rejects_empty_axis(self):
        with pytest.raises(ExperimentError):
            ParameterGrid(app=["a"], policy=[])


class TestRunSweep:
    def test_runs_all_points(self):
        grid = ParameterGrid(app=["nstream", "jacobi"],
                             policy=["las", "dfifo"])
        rows = run_sweep(tiny_config(), grid)
        assert len(rows) == 4
        assert all(r.makespan_mean > 0 for r in rows)

    def test_scheduler_kwargs_axis(self):
        grid = ParameterGrid(app=["nstream"], policy=["rgp+las"],
                             window_size=[4, 64])
        rows = run_sweep(tiny_config(), grid)
        assert len(rows) == 2
        assert rows[0].params["window_size"] == 4

    def test_bad_kwargs_reported(self):
        grid = ParameterGrid(app=["nstream"], policy=["las"],
                             window_size=[4])
        with pytest.raises(ExperimentError, match="rejected kwargs"):
            run_sweep(tiny_config(), grid)

    def test_progress_callback(self):
        lines = []
        grid = ParameterGrid(app=["nstream"], policy=["las"])
        run_sweep(tiny_config(), grid, progress=lines.append)
        assert len(lines) == 1

    def test_csv_output(self, tmp_path):
        grid = ParameterGrid(app=["nstream"], policy=["las", "dfifo"])
        rows = run_sweep(tiny_config(), grid)
        path = tmp_path / "sweep.csv"
        write_sweep_csv(rows, path)
        with open(path) as fh:
            parsed = list(csv.DictReader(fh))
        assert len(parsed) == 2
        assert {"app", "policy", "makespan_mean"} <= set(parsed[0])

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_sweep_csv([], tmp_path / "x.csv")
