"""Tests for the generic parameter-sweep harness."""

import csv

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    ParameterGrid,
    run_sweep,
    write_sweep_csv,
)

TINY = {
    "nstream": dict(n_blocks=6, block_elems=1024, iterations=2),
    "jacobi": dict(nt=3, tile=16, sweeps=2),
}


def tiny_config():
    return ExperimentConfig(app_params=TINY, seeds=(0,), window_size=16)


class TestGrid:
    def test_cartesian_size(self):
        grid = ParameterGrid(app=["a", "b"], policy=["x"], k=[1, 2, 3])
        assert len(grid) == 6
        assert len(list(grid.points())) == 6

    def test_points_carry_all_axes(self):
        grid = ParameterGrid(app=["a"], policy=["x"], k=[1])
        (point,) = grid.points()
        assert point == {"app": "a", "policy": "x", "k": 1}

    def test_requires_app_and_policy(self):
        with pytest.raises(ExperimentError):
            ParameterGrid(app=["a"])

    def test_rejects_empty_axis(self):
        with pytest.raises(ExperimentError):
            ParameterGrid(app=["a"], policy=[])


class TestRunSweep:
    def test_runs_all_points(self):
        grid = ParameterGrid(app=["nstream", "jacobi"],
                             policy=["las", "dfifo"])
        rows = run_sweep(tiny_config(), grid)
        assert len(rows) == 4
        assert all(r.makespan_mean > 0 for r in rows)

    def test_scheduler_kwargs_axis(self):
        grid = ParameterGrid(app=["nstream"], policy=["rgp+las"],
                             window_size=[4, 64])
        rows = run_sweep(tiny_config(), grid)
        assert len(rows) == 2
        assert rows[0].params["window_size"] == 4

    def test_bad_kwargs_reported(self):
        grid = ParameterGrid(app=["nstream"], policy=["las"],
                             window_size=[4])
        with pytest.raises(ExperimentError, match="rejected kwargs"):
            run_sweep(tiny_config(), grid)

    def test_progress_callback(self):
        lines = []
        grid = ParameterGrid(app=["nstream"], policy=["las"])
        run_sweep(tiny_config(), grid, progress=lines.append)
        assert len(lines) == 1

    def test_csv_output(self, tmp_path):
        grid = ParameterGrid(app=["nstream"], policy=["las", "dfifo"])
        rows = run_sweep(tiny_config(), grid)
        path = tmp_path / "sweep.csv"
        write_sweep_csv(rows, path)
        with open(path) as fh:
            parsed = list(csv.DictReader(fh))
        assert len(parsed) == 2
        assert {"app", "policy", "makespan_mean"} <= set(parsed[0])

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_sweep_csv([], tmp_path / "x.csv")


class TestParallelSweep:
    def test_parallel_rows_equal_sequential(self):
        """workers=2 must reproduce the sequential sweep exactly: points
        are independently seeded and rows come back in grid order."""
        grid = ParameterGrid(app=["nstream", "jacobi"],
                             policy=["las", "dfifo"])
        sequential = run_sweep(tiny_config(), grid)
        parallel = run_sweep(tiny_config(), grid, workers=2)
        assert len(parallel) == len(sequential) == 4
        for seq, par in zip(sequential, parallel):
            assert par.params == seq.params
            assert par.makespan_mean == seq.makespan_mean
            assert par.remote_fraction == seq.remote_fraction

    def test_parallel_checkpoint_and_resume(self, tmp_path):
        """A parallel sweep checkpoints every finished point; a resumed
        sweep (parallel or not) reuses them instead of recomputing."""
        path = tmp_path / "sweep.jsonl"
        grid = ParameterGrid(app=["nstream"], policy=["las", "dfifo"])
        first = run_sweep(tiny_config(), grid, checkpoint=path, workers=2)
        assert len(path.read_text().splitlines()) == 2

        lines = []
        resumed = run_sweep(tiny_config(), grid, checkpoint=path,
                            workers=2, progress=lines.append)
        assert all("(checkpointed)" in line for line in lines)
        assert [r.makespan_mean for r in resumed] == [
            r.makespan_mean for r in first
        ]
        # Nothing was re-appended on resume.
        assert len(path.read_text().splitlines()) == 2

    def test_partial_checkpoint_only_runs_missing_points(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        half = ParameterGrid(app=["nstream"], policy=["las"])
        run_sweep(tiny_config(), half, checkpoint=path)
        full = ParameterGrid(app=["nstream"], policy=["las", "dfifo"])
        lines = []
        rows = run_sweep(tiny_config(), full, checkpoint=path, workers=2,
                         progress=lines.append)
        assert len(rows) == 2
        checkpointed = [line for line in lines if "(checkpointed)" in line]
        assert len(checkpointed) == 1
        assert len(path.read_text().splitlines()) == 2

    def test_single_pending_point_stays_sequential(self, tmp_path):
        """workers > 1 with one pending point avoids pool overhead but
        still returns the right row."""
        grid = ParameterGrid(app=["nstream"], policy=["las"])
        (row,) = run_sweep(tiny_config(), grid, workers=4)
        assert row.makespan_mean > 0


class TestFailureIsolation:
    def test_poisoned_point_keeps_other_rows(self, tmp_path):
        """One failing point out of 8 must not discard the 7 finished
        ones: they are drained and checkpointed before the error
        re-raises, so a resumed sweep recomputes only the poison."""
        from repro.experiments.sweep import load_checkpoint

        path = tmp_path / "sweep.jsonl"
        grid = ParameterGrid(
            app=["nstream"],
            policy=["las", "dfifo", "ep", "heft", "random", "rgp",
                    "rgp+las", "no-such-policy"],
        )
        assert len(grid) == 8
        with pytest.raises(Exception) as info:
            run_sweep(tiny_config(), grid, checkpoint=path, workers=2)
        assert "no-such-policy" in str(info.value)

        done = load_checkpoint(path)
        assert len(done) == 7
        policies = {row.params["policy"] for row in done.values()}
        assert "no-such-policy" not in policies

        # resume with the poison removed: all 7 come from the checkpoint
        good = ParameterGrid(
            app=["nstream"],
            policy=["las", "dfifo", "ep", "heft", "random", "rgp",
                    "rgp+las"],
        )
        lines = []
        rows = run_sweep(tiny_config(), good, checkpoint=path,
                         workers=2, progress=lines.append)
        assert len(rows) == 7
        assert all("(checkpointed)" in line for line in lines)


class TestCheckpointDurability:
    def _one_row_checkpoint(self, path):
        grid = ParameterGrid(app=["nstream"], policy=["las"])
        run_sweep(tiny_config(), grid, checkpoint=path)
        return path.read_text()

    def test_torn_final_line_tolerated_and_truncated(self, tmp_path):
        from repro.experiments.sweep import load_checkpoint

        path = tmp_path / "sweep.jsonl"
        clean = self._one_row_checkpoint(path)
        with open(path, "a") as fh:
            fh.write('{"params": {"app": "nstr')  # killed mid-append
        done = load_checkpoint(path)
        assert len(done) == 1  # the full row survived
        assert path.read_text() == clean  # torn tail gone from disk

        # a resumed sweep recomputes only the lost point, appending to
        # a clean line instead of gluing records together
        grid = ParameterGrid(app=["nstream"], policy=["las", "dfifo"])
        rows = run_sweep(tiny_config(), grid, checkpoint=path)
        assert len(rows) == 2
        assert len(load_checkpoint(path)) == 2

    def test_corrupt_middle_line_raises(self, tmp_path):
        from repro.experiments.sweep import load_checkpoint

        path = tmp_path / "sweep.jsonl"
        clean = self._one_row_checkpoint(path)
        path.write_text('not json\n' + clean)
        with pytest.raises(ExperimentError, match="corrupt at line 1"):
            load_checkpoint(path)
