"""Unit and behavioural tests for the discrete-event simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machine import Interconnect, single_socket, two_socket
from repro.runtime import Placement, Simulator, TaskProgram, simulate
from repro.schedulers import make_scheduler
from repro.schedulers.base import Scheduler

from conftest import make_fan_program


class PinScheduler(Scheduler):
    """Test helper: pins every task to a fixed socket."""

    name = "pin"

    def __init__(self, socket=0):
        super().__init__()
        self.socket = socket

    def choose(self, task):
        return Placement(socket=self.socket)


class ScriptScheduler(Scheduler):
    """Test helper: placement per task id from a dict (default socket 0)."""

    name = "script"

    def __init__(self, script):
        super().__init__()
        self.script = script

    def choose(self, task):
        return self.script.get(task.tid, Placement(socket=0))


def compute_only_program(n=4, work=2.0):
    p = TaskProgram("compute")
    for i in range(n):
        p.task(f"t{i}", work=work)
    return p.finalize()


class TestBasicExecution:
    def test_single_task_compute_time(self, topo2):
        p = TaskProgram()
        p.task(work=3.0)
        res = simulate(p.finalize(), topo2, PinScheduler(), duration_jitter=0.0)
        assert res.makespan == pytest.approx(3.0)
        assert res.n_tasks == 1

    def test_parallel_tasks_overlap(self, topo2):
        p = compute_only_program(n=2, work=5.0)
        res = simulate(p, topo2, PinScheduler(), duration_jitter=0.0)
        assert res.makespan == pytest.approx(5.0)

    def test_more_tasks_than_cores_serialise(self, topo2):
        # 4 tasks of work 1 on a 2-core socket (pinned) -> 2 rounds.
        p = compute_only_program(n=4, work=1.0)
        res = simulate(p, topo2, PinScheduler(), steal=False,
                       duration_jitter=0.0)
        assert res.makespan == pytest.approx(2.0)

    def test_dependency_serialises(self, topo2, chain_program):
        res = simulate(chain_program, topo2, PinScheduler(),
                       duration_jitter=0.0)
        # 3 chained tasks of work 1 + memory time for the 8 KiB object.
        assert res.makespan >= 3.0
        order = res.completion_order()
        assert order == [0, 1, 2]

    def test_memory_time_added(self):
        topo = single_socket(cores=1)
        p = TaskProgram()
        a = p.data("a", 1_000_000)  # 1 MB = 1 time unit at full bw
        p.task(outs=[a], work=0.0)
        ic = Interconnect(topo, core_fraction=None, link_fraction=None)
        res = simulate(p.finalize(), topo, PinScheduler(), interconnect=ic,
                       duration_jitter=0.0)
        assert res.makespan == pytest.approx(1.0, rel=1e-6)

    def test_compute_and_memory_overlap(self):
        topo = single_socket(cores=1)
        p = TaskProgram()
        a = p.data("a", 1_000_000)
        p.task(outs=[a], work=5.0)  # compute dominates
        ic = Interconnect(topo, core_fraction=None, link_fraction=None)
        res = simulate(p.finalize(), topo, PinScheduler(), interconnect=ic,
                       duration_jitter=0.0)
        assert res.makespan == pytest.approx(5.0, rel=1e-6)


class TestDeferredAllocation:
    def test_output_first_touch_binds_locally(self, topo2):
        p = TaskProgram()
        a = p.data("a", 8192)
        p.task(outs=[a])
        sim = Simulator(p.finalize(), topo2, PinScheduler(socket=1),
                        duration_jitter=0.0)
        sim.run()
        assert sim.memory.bytes_on_node[1] == 8192
        assert sim.memory.bytes_on_node[0] == 0

    def test_initial_node_prebinds(self, topo2):
        p = TaskProgram()
        a = p.data("a", 8192, initial_node=0)
        p.task(ins=[a])
        sim = Simulator(p.finalize(), topo2, PinScheduler(socket=1),
                        duration_jitter=0.0)
        res = sim.run()
        assert sim.memory.bytes_on_node[0] == 8192
        assert res.remote_bytes == 8192  # read from socket 1

    def test_interleaved_prebinding(self, topo2):
        p = TaskProgram()
        a = p.data("a", 8192, interleaved=True)
        p.task(ins=[a])
        sim = Simulator(p.finalize(), topo2, PinScheduler(), duration_jitter=0.0)
        sim.run()
        assert sim.memory.bytes_on_node[0] == 4096
        assert sim.memory.bytes_on_node[1] == 4096

    def test_remote_placement_slower(self, topo2):
        ic = Interconnect(topo2, core_fraction=None, link_fraction=None)

        def run(consumer_socket):
            p = TaskProgram()
            a = p.data("a", 500_000)
            p.task("w", outs=[a])
            p.task("r", ins=[a])
            script = {0: Placement(socket=0), 1: Placement(socket=consumer_socket)}
            return simulate(p.finalize(), topo2, ScriptScheduler(script),
                            interconnect=Interconnect(topo2, core_fraction=None,
                                                      link_fraction=None),
                            steal=False, duration_jitter=0.0).makespan

        assert run(1) > run(0)


class TestBarriers:
    def test_barrier_orders_epochs(self, topo2):
        p = TaskProgram()
        p.task("a", work=1.0)
        p.task("b", work=5.0)
        p.barrier()
        p.task("c", work=1.0)
        res = simulate(p.finalize(), topo2, PinScheduler(), duration_jitter=0.0)
        rec = {r.name: r for r in res.records}
        assert rec["c"].start >= rec["b"].finish - 1e-9

    def test_barrier_with_no_deps_still_gates(self, topo2):
        p = TaskProgram()
        p.task("early", work=2.0)
        p.barrier()
        p.task("late", work=1.0)  # no data deps at all
        res = simulate(p.finalize(), topo2, PinScheduler(), duration_jitter=0.0)
        rec = {r.name: r for r in res.records}
        assert rec["late"].start >= rec["early"].finish - 1e-9

    def test_leading_barrier_is_harmless(self, topo2):
        p = TaskProgram()
        p.barrier()
        p.task(work=1.0)
        res = simulate(p.finalize(), topo2, PinScheduler(), duration_jitter=0.0)
        assert res.n_tasks == 1


class TestStealing:
    def test_steal_balances_pinned_load(self, topo2):
        p = compute_only_program(n=8, work=1.0)
        busy = simulate(p, topo2, PinScheduler(), steal=True,
                        duration_jitter=0.0)
        idle = simulate(p, topo2, PinScheduler(), steal=False,
                        duration_jitter=0.0)
        assert busy.makespan < idle.makespan
        assert busy.steals > 0

    def test_steal_off_means_zero_steals(self, topo2, fan_program):
        res = simulate(fan_program, topo2, make_scheduler("random"),
                       steal="off")
        assert res.steals == 0

    def test_near_steal_stays_in_module(self, topo8):
        # Pin everything to socket 0; near stealing only lets socket 1
        # (module sibling) help, so records run on sockets {0, 1} only.
        p = compute_only_program(n=32, work=1.0)
        res = simulate(p, topo8, PinScheduler(), steal="near",
                       duration_jitter=0.0)
        assert set(r.socket for r in res.records) <= {0, 1}

    def test_global_steal_uses_whole_machine(self, topo8):
        p = compute_only_program(n=64, work=1.0)
        res = simulate(p, topo8, PinScheduler(), steal="global",
                       duration_jitter=0.0)
        assert len(set(r.socket for r in res.records)) > 2

    def test_bad_steal_mode(self, topo2, chain_program):
        with pytest.raises(SimulationError):
            Simulator(chain_program, topo2, PinScheduler(), steal="sometimes")


class TestParkingAndTimers:
    def test_parked_task_released_by_timer(self, topo2):
        class ParkOnce(Scheduler):
            name = "park-once"

            def __init__(self):
                super().__init__()
                self.parked_once = False

            def on_program_start(self):
                self.sim.schedule_timer(5.0, self._release)

            def _release(self):
                self.sim.reoffer(list(self.sim.parked))

            def choose(self, task):
                if not self.parked_once:
                    self.parked_once = True
                    return Placement(park=True)
                return Placement(socket=0)

        p = compute_only_program(n=2, work=1.0)
        res = simulate(p, topo2, ParkOnce(), duration_jitter=0.0)
        assert res.parked_tasks == 1
        assert res.makespan >= 5.0

    def test_parked_forever_deadlocks(self, topo2):
        class ParkAll(Scheduler):
            name = "park-all"

            def choose(self, task):
                return Placement(park=True)

        p = compute_only_program(n=1)
        with pytest.raises(SimulationError, match="deadlock"):
            simulate(p, topo2, ParkAll())

    def test_negative_timer_rejected(self, topo2, chain_program):
        sim = Simulator(chain_program, topo2, PinScheduler())
        with pytest.raises(SimulationError):
            sim.schedule_timer(-1.0, lambda: None)


class TestValidationAndStats:
    def test_bad_placement_socket(self, topo2):
        p = compute_only_program(n=1)
        with pytest.raises(SimulationError):
            simulate(p, topo2, PinScheduler(socket=7))

    def test_bad_scheduler_return(self, topo2):
        class Broken(Scheduler):
            name = "broken"

            def choose(self, task):
                return 3  # not a Placement

        with pytest.raises(SimulationError, match="Placement"):
            simulate(compute_only_program(1), topo2, Broken())

    def test_traffic_accounting_consistent(self, topo2, fan_program):
        res = simulate(fan_program, topo2, make_scheduler("las"), seed=1,
                       duration_jitter=0.0)
        assert res.total_traffic == pytest.approx(
            fan_program.total_traffic_bytes()
        )

    def test_busy_time_bounded_by_makespan(self, topo2, fan_program):
        res = simulate(fan_program, topo2, make_scheduler("las"), seed=0)
        assert np.all(res.busy_time_per_socket
                      <= res.makespan * topo2.cores_per_socket + 1e-6)

    def test_records_cover_all_tasks(self, topo8, fan_program):
        res = simulate(fan_program, topo8, make_scheduler("dfifo"))
        assert sorted(r.tid for r in res.records) == list(
            range(fan_program.n_tasks)
        )

    def test_determinism_same_seed(self, topo8, fan_program):
        a = simulate(fan_program, topo8, make_scheduler("las"), seed=5)
        b = simulate(fan_program, topo8, make_scheduler("las"), seed=5)
        assert a.makespan == b.makespan
        assert [r.core for r in a.records] == [r.core for r in b.records]

    def test_different_seeds_differ(self, topo8):
        p = make_fan_program(width=16)
        a = simulate(p, topo8, make_scheduler("random"), seed=1)
        b = simulate(p, topo8, make_scheduler("random"), seed=2)
        assert a.makespan != b.makespan

    def test_jitter_bounds(self, topo2):
        with pytest.raises(SimulationError):
            Simulator(compute_only_program(1), topo2, PinScheduler(),
                      duration_jitter=1.5)

    def test_summary_text(self, topo2, chain_program):
        res = simulate(chain_program, topo2, PinScheduler())
        assert "makespan" in res.summary()

    def test_empty_program(self, topo2):
        res = simulate(TaskProgram().finalize(), topo2, PinScheduler())
        assert res.makespan == 0.0
        assert res.n_tasks == 0


class TestReofferIdempotence:
    """Re-offering the same parked tasks twice (e.g. a timeout firing and
    the partition-done timer arriving in the same instant) must not
    duplicate executions: ``reoffer`` only releases tasks that are still
    parked."""

    class DoubleReofferScheduler(Scheduler):
        name = "double-reoffer"

        def on_program_start(self):
            self._released = False
            self.sim.schedule_timer(1.0, self._release)

        def _release(self):
            self._released = True
            parked = list(self.sim.parked)
            self.sim.reoffer(parked)
            self.sim.reoffer(parked)  # duplicate: must be a no-op

        def choose(self, task):
            if not self._released:
                return Placement(park=True)
            return Placement(socket=0)

    class KeyedParkScheduler(Scheduler):
        name = "keyed-park"

        def on_program_start(self):
            self._released = set()
            self.sim.schedule_timer(1.0, lambda: self._release(0))
            self.sim.schedule_timer(2.0, lambda: self._release(1))

        def _release(self, key):
            self._released.add(key)
            self.sim.reoffer_key(key)
            self.sim.reoffer_key(key)  # duplicate: must be a no-op

        def choose(self, task):
            key = task.tid % 2
            if key not in self._released:
                return Placement(park=True, park_key=key)
            return Placement(socket=0)

    def test_double_reoffer_runs_each_task_once(self, topo2):
        p = TaskProgram("indep")
        for i in range(6):
            a = p.data(f"a{i}", 4096)
            p.task(f"t{i}", outs=[a], work=0.5)
        prog = p.finalize()
        sim = Simulator(prog, topo2, self.DoubleReofferScheduler(), seed=0)
        res = sim.run()
        assert sorted(r.tid for r in res.records) == list(range(6))
        assert all(r.attempt == 0 for r in res.records)
        assert res.parked_tasks == 6
        assert sim.parked == []

    def test_reoffer_key_releases_only_that_key(self, topo2):
        p = TaskProgram("indep")
        for i in range(6):
            a = p.data(f"a{i}", 4096)
            p.task(f"t{i}", outs=[a], work=0.1)
        prog = p.finalize()
        sim = Simulator(prog, topo2, self.KeyedParkScheduler(), seed=0,
                        duration_jitter=0.0)
        res = sim.run()
        assert sorted(r.tid for r in res.records) == list(range(6))
        assert all(r.attempt == 0 for r in res.records)
        by_tid = {r.tid: r for r in res.records}
        # Even tids released at t=1, odd tids at t=2.
        assert all(by_tid[t].start >= 1.0 for t in (0, 2, 4))
        assert all(by_tid[t].start < 2.0 for t in (0, 2, 4))
        assert all(by_tid[t].start >= 2.0 for t in (1, 3, 5))
        assert sim.parked == [] and sim.parked_by_key == {}

    def test_reoffer_of_never_parked_tasks_is_ignored(self, topo2):
        """A stale re-offer naming tasks that already ran must not
        re-execute them."""
        p = TaskProgram("indep")
        for i in range(4):
            a = p.data(f"a{i}", 4096)
            p.task(f"t{i}", outs=[a], work=0.2)
        prog = p.finalize()

        class StaleReoffer(Scheduler):
            name = "stale-reoffer"

            def on_program_start(self):
                self._remembered = []
                self._released = False
                self.sim.schedule_timer(0.5, self._release)
                self.sim.schedule_timer(2.0, self._stale)

            def _release(self):
                self._released = True
                self._remembered = list(self.sim.parked)
                self.sim.reoffer(self._remembered)

            def _stale(self):
                # Tasks finished long ago; this must be a no-op.
                self.sim.reoffer(self._remembered)

            def choose(self, task):
                if not self._released:
                    return Placement(park=True)
                return Placement(socket=0)

        sim = Simulator(prog, topo2, StaleReoffer(), seed=0)
        res = sim.run()
        assert sorted(r.tid for r in res.records) == list(range(4))
        assert all(r.attempt == 0 for r in res.records)
