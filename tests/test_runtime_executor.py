"""Unit tests for the sequential executor (payload + order validation)."""

import pytest

from repro.errors import DependencyError
from repro.runtime import TaskProgram, execute, execute_in_order


def make_program():
    log = []
    p = TaskProgram()
    a = p.data("a", 10)
    p.task("w", outs=[a], fn=lambda: log.append("w"))
    p.task("r1", ins=[a], fn=lambda: log.append("r1"))
    p.task("r2", ins=[a], fn=lambda: log.append("r2"))
    return p.finalize(), log


class TestExecute:
    def test_creation_order(self):
        p, log = make_program()
        execute(p)
        assert log == ["w", "r1", "r2"]

    def test_custom_legal_order(self):
        p, log = make_program()
        execute_in_order(p, [0, 2, 1])
        assert log == ["w", "r2", "r1"]

    def test_illegal_order_rejected(self):
        p, log = make_program()
        with pytest.raises(DependencyError, match="before its dependency"):
            execute_in_order(p, [1, 0, 2])
        assert log == []  # validation happens before any payload runs

    def test_incomplete_order_rejected(self):
        p, _ = make_program()
        with pytest.raises(DependencyError, match="permutation"):
            execute_in_order(p, [0, 1])

    def test_duplicate_order_rejected(self):
        p, _ = make_program()
        with pytest.raises(DependencyError):
            execute_in_order(p, [0, 1, 1])

    def test_tasks_without_fn_ok(self):
        p = TaskProgram()
        p.task()
        execute(p.finalize())


class TestBarrierLegality:
    def test_barrier_violation_rejected(self):
        p = TaskProgram()
        p.task("a")
        p.barrier()
        p.task("b")
        with pytest.raises(DependencyError, match="barrier"):
            execute_in_order(p.finalize(), [1, 0])

    def test_barrier_respecting_order_ok(self):
        hits = []
        p = TaskProgram()
        p.task("a", fn=lambda: hits.append("a"))
        p.task("b", fn=lambda: hits.append("b"))
        p.barrier()
        p.task("c", fn=lambda: hits.append("c"))
        execute_in_order(p.finalize(), [1, 0, 2])
        assert hits == ["b", "a", "c"]
