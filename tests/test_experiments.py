"""Tests of the experiment harness (config, runner, Figure 1, ablations).

These use tiny app sizes and single seeds: they validate the machinery, not
the published numbers (shape checks live in test_integration.py and the
benchmarks).
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    FIGURE1_APPS,
    PAPER_FIGURE1,
    ExperimentConfig,
    build_program,
    run_figure1,
    run_figure1_app,
    run_las_ablation,
    run_partitioner_ablation,
    run_policy,
    run_propagation_ablation,
    run_socket_ablation,
    run_window_ablation,
)

TINY = {
    "cg": dict(nt=2, tile=16, iterations=2),
    "gauss-seidel": dict(nt=4, tile=16, sweeps=2),
    "histogram": dict(nt=4, tile=16, n_bins=4, repeats=2),
    "jacobi": dict(nt=4, tile=16, sweeps=2),
    "nstream": dict(n_blocks=8, block_elems=1024, iterations=3),
    "qr": dict(nt=3, tile=16),
    "redblack": dict(nt=4, tile=16, sweeps=2),
    "symminv": dict(nt=3, tile=16),
}


def tiny_config(**overrides):
    defaults = dict(app_params={k: dict(v) for k, v in TINY.items()},
                    seeds=(0,), window_size=64)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestConfig:
    def test_paper_and_quick_presets(self):
        paper = ExperimentConfig.paper()
        quick = ExperimentConfig.quick()
        assert len(paper.seeds) >= len(quick.seeds)
        assert paper.app_params["jacobi"]["nt"] >= quick.app_params["jacobi"]["nt"]

    def test_baseline_not_in_policies(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(policies=("las", "ep"))

    def test_needs_seeds(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(seeds=())

    def test_interconnect_uses_knobs(self):
        cfg = ExperimentConfig(remote_penalty_exp=2.0, link_fraction=0.3,
                               core_fraction=0.2)
        ic = cfg.interconnect()
        assert ic.remote_penalty_exp == 2.0
        assert ic.link_fraction == 0.3
        assert ic.core_fraction == 0.2

    def test_apps_cover_figure1(self):
        assert set(ExperimentConfig.paper().app_params) == set(FIGURE1_APPS)


class TestRunner:
    def test_build_program(self):
        cfg = tiny_config()
        prog = build_program(cfg, "nstream")
        assert prog.n_tasks == 8 * 4

    def test_build_program_unknown_app(self):
        with pytest.raises(ExperimentError):
            build_program(tiny_config(), "linpack")

    def test_run_policy_stats(self):
        cfg = tiny_config(seeds=(0, 1))
        prog = build_program(cfg, "nstream")
        stats = run_policy(cfg, prog, "dfifo")
        assert len(stats.makespans) == 2
        assert stats.makespan_mean > 0
        assert 0 <= stats.remote_fraction_mean <= 1


class TestFigure1:
    def test_single_app(self):
        speedups = run_figure1_app("nstream", tiny_config())
        assert set(speedups) == {"dfifo", "rgp+las", "ep"}
        assert all(v > 0 for v in speedups.values())

    def test_full_run_structure(self):
        cfg = tiny_config(apps=("nstream", "jacobi"))
        result = run_figure1(cfg)
        assert result.table.apps == ["nstream", "jacobi"]
        text = result.render()
        assert "geomean" in text
        for (app, pol), stats in result.raw.items():
            assert stats.makespan_mean > 0

    def test_progress_callback(self):
        lines = []
        run_figure1(tiny_config(apps=("nstream",)), progress=lines.append)
        assert any("nstream" in line for line in lines)

    def test_paper_reference_values_present(self):
        assert PAPER_FIGURE1[("geomean", "rgp+las")] == 1.12
        assert PAPER_FIGURE1[("nstream", "ep")] == 1.75


class TestAblations:
    def test_window_ablation(self):
        res = run_window_ablation(tiny_config(), window_sizes=(8, 64),
                                  apps=("nstream",))
        assert res.settings == ["window=8", "window=64"]
        assert "geomean" in res.render()

    def test_partitioner_ablation(self):
        res = run_partitioner_ablation(
            tiny_config(), partitioners=("drb", "random"), apps=("nstream",)
        )
        assert set(res.settings) == {"drb", "random"}

    def test_socket_ablation(self):
        res = run_socket_ablation(tiny_config(), socket_counts=(2, 4),
                                  apps=("nstream",))
        assert res.settings == ["2 sockets", "4 sockets"]

    def test_las_ablation(self):
        res = run_las_ablation(tiny_config(), apps=("nstream",))
        assert len(res.settings) == 3

    def test_propagation_ablation(self):
        res = run_propagation_ablation(tiny_config(), apps=("nstream",))
        assert set(res.settings) == {"las", "repartition", "cyclic", "random"}
