"""Served profiles and correlation-id propagation (PR 7).

One request id follows a job through every layer — HTTP header -> spec
-> record -> status responses -> the profile artifact — and every served
job carries its critical-path profile, retrievable at
``GET /v1/jobs/{id}/profile``.
"""

import asyncio
import json

import pytest

from repro.errors import JobSpecError
from repro.service import HttpServer, ServiceConfig, SimulationService
from repro.service.client import arequest_json
from repro.service.jobs import JobSpec, execute_spec

TINY = {"n_blocks": 6, "block_elems": 1024, "iterations": 2}


def tiny_spec(seed=0, **overrides):
    spec = {"app": "nstream", "policy": "las", "seed": seed,
            "app_params": dict(TINY)}
    spec.update(overrides)
    return spec


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


async def with_server(scenario, **config_overrides):
    defaults = dict(workers=1, queue_capacity=8,
                    retry_base_s=0.02, retry_max_s=0.2)
    defaults.update(config_overrides)
    service = SimulationService(ServiceConfig(**defaults))
    server = HttpServer(service, port=0)
    await server.start()
    try:

        async def call(method, path, body=None, headers=None):
            return await arequest_json(
                "127.0.0.1", server.port, method, path, body,
                headers=headers,
            )

        return await scenario(call, service)
    finally:
        await server.stop()
        await service.stop()


# ---------------------------------------------------------------------------
# JobSpec: correlation_id is delivery-only and validated.


class TestSpecCorrelationId:
    def test_accepted_and_carried(self):
        spec = JobSpec(**tiny_spec(correlation_id="req-abc/42")).validated()
        assert spec.correlation_id == "req-abc/42"
        assert spec.to_dict()["correlation_id"] == "req-abc/42"
        round_trip = JobSpec.from_dict(spec.to_dict())
        assert round_trip.correlation_id == "req-abc/42"

    def test_excluded_from_content_hash(self):
        a = JobSpec(**tiny_spec(correlation_id="caller-a")).validated()
        b = JobSpec(**tiny_spec(correlation_id="caller-b")).validated()
        plain = JobSpec(**tiny_spec()).validated()
        assert a.content_hash() == b.content_hash() == plain.content_hash()
        assert "correlation_id" not in a.canonical_dict()

    @pytest.mark.parametrize(
        "bad",
        ["", "x" * 129, "two\nlines", "tab\tchar", "\x00", 42, ["list"]],
        ids=["empty", "too-long", "newline", "tab", "control", "int", "list"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(JobSpecError, match="correlation_id"):
            JobSpec(**tiny_spec(correlation_id=bad)).validated()

    def test_none_is_fine_and_absent_from_dict(self):
        spec = JobSpec(**tiny_spec()).validated()
        assert spec.correlation_id is None
        assert "correlation_id" not in spec.to_dict()


# ---------------------------------------------------------------------------
# Worker side: every executed job carries its profile.


class TestExecuteSpecProfile:
    def test_result_includes_exact_profile(self):
        spec = JobSpec(**tiny_spec()).validated()
        out = execute_spec(spec.to_dict())
        profile = out["profile"]
        json.dumps(profile)  # artifact must be JSON-safe
        components = profile["components"]
        assert sum(components.values()) == pytest.approx(
            out["makespan"], abs=1e-9
        )
        assert profile["whatif_remote_local"] <= out["makespan"] + 1e-9
        # Compact artifact: no per-segment timeline in the stored result.
        assert "segments" not in profile

    def test_execution_is_still_deterministic(self):
        spec = JobSpec(**tiny_spec(seed=7)).validated()
        assert execute_spec(spec.to_dict()) == execute_spec(spec.to_dict())


# ---------------------------------------------------------------------------
# HTTP: header -> spec -> status -> profile route, echoed back out.


class TestHttpPropagation:
    def test_header_rides_job_to_profile(self):
        async def scenario(call, service):
            done = await call(
                "POST", "/v1/jobs?wait=1&timeout=60", tiny_spec(seed=40),
                headers={"X-Correlation-Id": "trace-40"},
            )
            assert done.status == 200
            assert done.body["state"] == "DONE"
            assert done.body["correlation_id"] == "trace-40"
            assert done.headers["x-correlation-id"] == "trace-40"

            job_id = done.body["job_id"]
            status = await call("GET", f"/v1/jobs/{job_id}")
            assert status.body["correlation_id"] == "trace-40"

            prof = await call("GET", f"/v1/jobs/{job_id}/profile")
            assert prof.status == 200
            assert prof.body["correlation_id"] == "trace-40"
            assert prof.headers["x-correlation-id"] == "trace-40"
            assert prof.body["hash"] == done.body["hash"]
            components = prof.body["profile"]["components"]
            assert sum(components.values()) == pytest.approx(
                done.body["result"]["makespan"], abs=1e-9
            )
            return True

        assert run(with_server(scenario))

    def test_body_correlation_id_wins_over_header(self):
        async def scenario(call, service):
            done = await call(
                "POST", "/v1/jobs?wait=1&timeout=60",
                tiny_spec(seed=41, correlation_id="from-body"),
                headers={"X-Correlation-Id": "from-header"},
            )
            assert done.status == 200
            assert done.body["correlation_id"] == "from-body"
            assert done.headers["x-correlation-id"] == "from-body"
            return True

        assert run(with_server(scenario))

    def test_bad_header_correlation_id_rejected(self):
        async def scenario(call, service):
            bad = await call(
                "POST", "/v1/jobs", tiny_spec(seed=42),
                headers={"X-Correlation-Id": "y" * 200},
            )
            assert bad.status == 400
            assert "correlation_id" in bad.body["error"]
            return True

        assert run(with_server(scenario))

    def test_no_header_no_echo(self):
        async def scenario(call, service):
            done = await call(
                "POST", "/v1/jobs?wait=1&timeout=60", tiny_spec(seed=43)
            )
            assert done.status == 200
            assert "correlation_id" not in done.body
            assert "x-correlation-id" not in done.headers
            return True

        assert run(with_server(scenario))


class TestProfileRoute:
    def test_unknown_job_404(self):
        async def scenario(call, service):
            missing = await call("GET", "/v1/jobs/nope/profile")
            assert missing.status == 404
            return True

        assert run(with_server(scenario))

    def test_pending_job_202(self):
        async def scenario(call, service):
            accepted = await call(
                "POST", "/v1/jobs",
                tiny_spec(seed=44, chaos={"sleep_s": 1.0}),
            )
            job_id = accepted.body["job_id"]
            early = await call("GET", f"/v1/jobs/{job_id}/profile")
            assert early.status == 202
            assert early.body["state"] in ("QUEUED", "RUNNING")
            await service.wait(job_id, timeout=60)
            late = await call("GET", f"/v1/jobs/{job_id}/profile")
            assert late.status == 200
            return True

        assert run(with_server(scenario))

    def test_latency_histogram_served(self):
        async def scenario(call, service):
            done = await call(
                "POST", "/v1/jobs?wait=1&timeout=60", tiny_spec(seed=45)
            )
            assert done.status == 200
            prom = await call("GET", "/metrics?format=prometheus")
            text = prom.body["prometheus"]
            assert "service_job_latency_s_bucket" in text
            assert 'service_job_latency_s_summary{quantile="0.99"}' in text
            return True

        assert run(with_server(scenario))
