"""Online invariant checker: seeded violations and the inertness guarantee.

Two properties matter: the checker must *fire* on every class of corruption
it claims to cover (each seeded-violation test below tampers with exactly
one invariant), and with verification disabled the simulator must be
byte-identical to a run that never heard of ``repro.verify`` — pinned both
pairwise (verify on vs off) and against the pre-existing golden inertness
grid.
"""

from __future__ import annotations

import types

import numpy as np
import pytest

from repro.errors import VerificationError
from repro.machine import two_socket
from repro.machine.interconnect import Interconnect
from repro.runtime import Simulator, TaskProgram
from repro.schedulers import make_scheduler
from repro.verify import InvariantChecker, POLICY_MATRIX, make_case, run_case


def _program(n_lanes=4):
    prog = TaskProgram("inv")
    lanes = [prog.data(f"a{i}", 65536) for i in range(n_lanes)]
    for i, a in enumerate(lanes):
        prog.task(f"p{i}", outs=[a], work=0.5)
    for i, a in enumerate(lanes):
        prog.task(f"c{i}", ins=[a], work=0.5)
    return prog.finalize()


def _sim(verify, seed=0, **kwargs):
    topo = two_socket(cores_per_socket=2)
    return Simulator(
        _program(), topo, make_scheduler("las"),
        interconnect=Interconnect(topo), seed=seed, verify=verify, **kwargs,
    )


def _fake_rt(tid, core, socket, start=0.0, epoch=0):
    task = types.SimpleNamespace(tid=tid, epoch=epoch)
    return types.SimpleNamespace(task=task, core=core, socket=socket,
                                 start=start)


# ----------------------------------------------------------------------
# Seeded violations: each corruption must raise VerificationError
# ----------------------------------------------------------------------
def test_core_exclusivity_violation():
    sim = _sim(verify=False)
    checker = InvariantChecker(sim)
    checker.on_start(_fake_rt(0, core=1, socket=0), 1.0, 0)
    with pytest.raises(VerificationError, match="core exclusivity"):
        checker.on_start(_fake_rt(1, core=1, socket=0), 1.0, 0)


def test_quarantined_core_violation():
    sim = _sim(verify=False)
    checker = InvariantChecker(sim)
    sim.quarantined.add(2)
    with pytest.raises(VerificationError, match="quarantined"):
        checker.on_start(_fake_rt(0, core=2, socket=1), 1.0, 0)


def test_dependence_causality_violation():
    sim = _sim(verify=False)
    checker = InvariantChecker(sim)
    sim.pending_deps[3] = 1
    with pytest.raises(VerificationError, match="dependence causality"):
        checker.on_start(_fake_rt(3, core=0, socket=0), 1.0, 0)


def test_barrier_epoch_violation():
    sim = _sim(verify=False)
    checker = InvariantChecker(sim)
    with pytest.raises(VerificationError, match="barrier causality"):
        checker.on_start(_fake_rt(0, core=0, socket=0, epoch=5), 1.0, 0)


def test_jitter_bound_violation():
    sim = _sim(verify=False, duration_jitter=0.05)
    checker = InvariantChecker(sim)
    with pytest.raises(VerificationError, match="jitter factor"):
        checker.on_start(_fake_rt(0, core=0, socket=0), 2.0, 0)


def test_clock_monotonicity_violation():
    sim = _sim(verify=False)
    checker = InvariantChecker(sim)
    sim.now = 10.0
    checker.on_loop(sim)
    sim.now = 1.0
    with pytest.raises(VerificationError, match="clock went backwards"):
        checker.on_loop(sim)


def test_phantom_busy_core_violation():
    sim = _sim(verify=False)
    checker = InvariantChecker(sim)
    # A core both idle and "running" according to the simulator.
    rt = _fake_rt(0, core=0, socket=0)
    checker.on_start(rt, 1.0, 0)
    sim.running[0] = rt
    with pytest.raises(VerificationError, match="phantom-busy|idle and running"):
        checker.on_loop(sim)


def test_parked_leak_violation():
    sim = _sim(verify=False)
    checker = InvariantChecker(sim)
    sim.parked_by_key[7] = [types.SimpleNamespace(tid=0)]
    sim.done[:] = True
    with pytest.raises(VerificationError, match="park_key leak"):
        checker.on_run_end(sim, types.SimpleNamespace(events=[]))


def test_event_stream_monotonicity_violation():
    sim = _sim(verify=False)
    checker = InvariantChecker(sim)
    sim.done[:] = True
    ev = lambda ts: types.SimpleNamespace(ts=ts, kind="x")  # noqa: E731
    result = types.SimpleNamespace(events=[ev(1.0), ev(0.5)])
    with pytest.raises(VerificationError, match="event stream goes backwards"):
        checker.on_run_end(sim, result)


def test_byte_conservation_violation_on_migrate():
    sim = _sim(verify=False)
    checker = InvariantChecker(sim)
    key = next(iter(sim.memory._pages))
    sim.memory.touch(key, 0)
    checker.on_memory_op(sim.memory, "touch", key)
    # Destroy bound pages behind the checker's back, then claim a migrate.
    from repro.machine.memory import UNBOUND

    sim.memory._pages[key][:] = UNBOUND
    with pytest.raises(VerificationError, match="byte-conservation"):
        checker.on_memory_op(sim.memory, "migrate", key)


def test_global_byte_reconcile_violation():
    sim = _sim(verify=False)
    checker = InvariantChecker(sim)
    key = next(iter(sim.memory._pages))
    sim.memory.touch(key, 0)
    sim.memory.bytes_on_node[0] += 4096  # cook the books
    with pytest.raises(VerificationError, match="byte-conservation"):
        checker.on_memory_op(sim.memory, "touch", key)


# ----------------------------------------------------------------------
# End-to-end: the armed checker stays silent on healthy runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label,scheduler,kwargs", POLICY_MATRIX)
def test_checker_silent_on_healthy_runs(label, scheduler, kwargs):
    case = make_case(13, label, scheduler, kwargs)
    sim_kwargs = dict(case.sim_kwargs)
    sim_kwargs["verify"] = True
    from repro.verify import VerifyCase

    armed = VerifyCase(
        program=case.program, topology=case.topology,
        scheduler=case.scheduler, scheduler_kwargs=case.scheduler_kwargs,
        interconnect_kwargs=case.interconnect_kwargs, sim_kwargs=sim_kwargs,
        faults=case.faults, label=case.label,
    )
    report = run_case(armed)
    assert report.status in ("ok", "production-error"), report.summary()


def test_checker_catches_leak_in_real_run(monkeypatch):
    """A simulator that forgets the parked_by_key cleanup trips the probe."""
    orig = Simulator.reoffer

    def leaky(self, tasks):
        snapshot = {k: list(v) for k, v in self.parked_by_key.items()}
        orig(self, tasks)
        self.parked_by_key.update(snapshot)

    monkeypatch.setattr(Simulator, "reoffer", leaky)
    topo = two_socket(cores_per_socket=2)
    prog = _program()
    sim = Simulator(
        prog, topo,
        make_scheduler("rgp", window_size=4, propagation="repartition",
                       partition_delay=0.1, prefetch_threshold=0.5),
        interconnect=Interconnect(topo), seed=0, verify=True,
    )
    with pytest.raises(VerificationError, match="park_key leak"):
        sim.run()


# ----------------------------------------------------------------------
# Inertness: disabled checker is byte-identical
# ----------------------------------------------------------------------
def _records_tuple(result):
    return [
        (r.tid, r.core, r.socket, r.start, r.finish, r.attempt)
        for r in result.records
    ]


@pytest.mark.parametrize("jitter", [0.0, 0.05])
def test_verify_off_is_byte_identical(jitter):
    res_off = _sim(verify=False, seed=5, duration_jitter=jitter).run()
    res_on = _sim(verify=True, seed=5, duration_jitter=jitter).run()
    assert _records_tuple(res_off) == _records_tuple(res_on)
    assert res_off.makespan == res_on.makespan
    assert res_off.local_bytes == res_on.local_bytes
    assert res_off.remote_bytes == res_on.remote_bytes
    assert np.array_equal(res_off.bytes_by_pair, res_on.bytes_by_pair)


def test_verify_env_flag_honoured(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "0")
    sim = _sim(verify=None)
    assert sim.probe is None
    monkeypatch.setenv("REPRO_VERIFY", "1")
    sim = _sim(verify=None)
    assert sim.probe is not None
    # Explicit verify= beats the environment.
    monkeypatch.setenv("REPRO_VERIFY", "1")
    sim = _sim(verify=False)
    assert sim.probe is None


def test_golden_grid_unaffected_by_verify_flag():
    """Sample the golden inertness grid: verify=False equals verify=True."""
    from test_rgp_inertness import POLICIES, chains_program

    program = chains_program()
    topo = two_socket(cores_per_socket=2)
    for name in ("dfifo", "las"):
        off = Simulator(program, topo, POLICIES[name](), seed=0,
                        verify=False).run()
        on = Simulator(program, topo, POLICIES[name](), seed=0,
                       verify=True).run()
        assert _records_tuple(off) == _records_tuple(on)
