"""Resilience report, hardened run_policy, and sweep checkpointing."""

import pytest

from repro.errors import ExperimentError, SimulationError
from repro.experiments import (
    ExperimentConfig,
    ParameterGrid,
    build_program,
    run_policy,
    run_sweep,
)
from repro.experiments.sweep import load_checkpoint
from repro.faults import CoreFault, FaultPlan, TaskCrash
from repro.machine import two_socket
from repro.metrics import ResilienceReport, resilience_report
from repro.runtime import Simulator
from repro.schedulers import make_scheduler

TINY = {
    "nstream": dict(n_blocks=6, block_elems=1024, iterations=2),
    "jacobi": dict(nt=3, tile=16, sweeps=2),
}


def tiny_config(**overrides):
    defaults = dict(
        app_params={k: dict(v) for k, v in TINY.items()},
        seeds=(0,),
        window_size=16,
        topology=two_socket(cores_per_socket=2),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


# Fault times sized to the tiny apps above (makespans of ~0.1 time units).
CRASHY = FaultPlan(
    core_faults=(CoreFault(core=0, at=0.01),),
    task_crashes=(TaskCrash(probability=0.3),),
)


class TestResilienceReport:
    def _results(self):
        cfg = tiny_config()
        prog = build_program(cfg, "jacobi")
        base = Simulator(
            prog, cfg.topology, make_scheduler("las"), seed=0
        ).run()
        faulted = Simulator(
            prog, cfg.topology, make_scheduler("las"), seed=0,
            faults=CRASHY, max_retries=20,
        ).run()
        return base, faulted

    def test_report_fields(self):
        base, faulted = self._results()
        rep = resilience_report(faulted, base)
        assert isinstance(rep, ResilienceReport)
        assert rep.reexecutions == faulted.reexecutions > 0
        assert rep.cores_failed == 1
        assert rep.wasted_work > 0
        assert 0 < rep.wasted_fraction < 1
        assert rep.degradation_factor >= 1.0
        assert sum(rep.crash_causes.values()) == rep.reexecutions

    def test_report_without_baseline(self):
        _, faulted = self._results()
        rep = resilience_report(faulted)
        assert rep.fault_free_makespan is None
        assert rep.degradation_factor is None
        assert "fault-free" not in rep.render()

    def test_render_mentions_key_numbers(self):
        base, faulted = self._results()
        text = resilience_report(faulted, base).render()
        assert "re-executions" in text
        assert "degradation" in text
        assert "wasted work" in text

    def test_mismatched_baseline_rejected(self):
        base, faulted = self._results()
        cfg = tiny_config()
        other = Simulator(
            build_program(cfg, "nstream"), cfg.topology,
            make_scheduler("las"), seed=0,
        ).run()
        with pytest.raises(ExperimentError, match="same program"):
            resilience_report(faulted, other)

    def test_faulted_baseline_rejected(self):
        _, faulted = self._results()
        with pytest.raises(ExperimentError, match="baseline itself"):
            resilience_report(faulted, faulted)


class TestHardenedRunPolicy:
    def test_validate_flag(self):
        cfg = tiny_config(seeds=(0, 1))
        prog = build_program(cfg, "nstream")
        stats = run_policy(cfg, prog, "las", validate=True)
        assert len(stats.makespans) == 2
        assert stats.reexecutions == (0, 0)

    def test_faults_threaded_through(self):
        cfg = tiny_config()
        prog = build_program(cfg, "jacobi")
        stats = run_policy(
            cfg, prog, "las", validate=True, faults=CRASHY,
            sim_kwargs={"max_retries": 20},
        )
        assert stats.reexecutions_total > 0
        assert sum(stats.wasted_work) > 0

    def test_timeout_surfaces_as_experiment_error(self):
        cfg = tiny_config()
        prog = build_program(cfg, "jacobi")
        with pytest.raises(ExperimentError, match="failed after 1 attempt"):
            run_policy(cfg, prog, "las", timeout=1e-9)

    def test_retries_count_attempts(self):
        cfg = tiny_config()
        prog = build_program(cfg, "jacobi")
        with pytest.raises(ExperimentError, match="failed after 3 attempt"):
            run_policy(cfg, prog, "las", timeout=1e-9, retries=2)

    def test_negative_retries_rejected(self):
        cfg = tiny_config()
        prog = build_program(cfg, "nstream")
        with pytest.raises(ExperimentError, match="retries"):
            run_policy(cfg, prog, "las", retries=-1)

    def test_validation_failure_propagates(self, monkeypatch):
        cfg = tiny_config()
        prog = build_program(cfg, "nstream")
        import repro.experiments.runner as runner_mod

        def bad_validate(*args, **kwargs):
            raise SimulationError("forged schedule")

        monkeypatch.setattr(runner_mod, "validate_schedule", bad_validate)
        with pytest.raises(SimulationError, match="forged"):
            run_policy(cfg, prog, "las", validate=True)


class TestSweepCheckpoint:
    def grid(self):
        return ParameterGrid(app=["nstream", "jacobi"], policy=["las"])

    def test_checkpoint_written_and_resumed(self, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        cfg = tiny_config()
        rows = run_sweep(cfg, self.grid(), checkpoint=ckpt)
        assert len(rows) == 2
        assert len(load_checkpoint(ckpt)) == 2

        # A rerun serves every point from the checkpoint.
        lines = []
        rows2 = run_sweep(cfg, self.grid(), progress=lines.append,
                          checkpoint=ckpt)
        assert [r.params for r in rows2] == [r.params for r in rows]
        assert [r.makespan_mean for r in rows2] == [
            r.makespan_mean for r in rows
        ]
        assert all("checkpointed" in line for line in lines)

    def test_partial_checkpoint_resumes_missing_points(self, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        cfg = tiny_config()
        run_sweep(cfg, ParameterGrid(app=["nstream"], policy=["las"]),
                  checkpoint=ckpt)
        lines = []
        rows = run_sweep(cfg, self.grid(), progress=lines.append,
                         checkpoint=ckpt)
        assert len(rows) == 2
        assert sum("checkpointed" in line for line in lines) == 1
        assert len(load_checkpoint(ckpt)) == 2

    def test_corrupt_trailing_line_ignored(self, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        cfg = tiny_config()
        run_sweep(cfg, self.grid(), checkpoint=ckpt)
        with open(ckpt, "a") as fh:
            fh.write('{"params": {"app": "torn-')  # killed mid-write
        assert len(load_checkpoint(ckpt)) == 2
        rows = run_sweep(cfg, self.grid(), checkpoint=ckpt)
        assert len(rows) == 2

    def test_missing_checkpoint_file_is_empty(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.jsonl") == {}

    def test_no_checkpoint_still_works(self):
        rows = run_sweep(tiny_config(), self.grid())
        assert len(rows) == 2

    def test_run_kwargs_forwarded(self, tmp_path):
        with pytest.raises(ExperimentError, match="failed after"):
            run_sweep(tiny_config(), self.grid(), timeout=1e-9)
