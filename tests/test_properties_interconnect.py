"""Property-based tests for the multi-resource max-min fair allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Interconnect, StreamKey, bullion_s16

TOPO = bullion_s16()
BW = float(TOPO.node_bandwidth[0])


@st.composite
def stream_sets(draw, max_streams=24):
    n = draw(st.integers(min_value=1, max_value=max_streams))
    return [
        StreamKey(
            socket=draw(st.integers(min_value=0, max_value=7)),
            node=draw(st.integers(min_value=0, max_value=7)),
            group=draw(st.integers(min_value=0, max_value=n)),
        )
        for _ in range(n)
    ]


@given(stream_sets(),
       st.sampled_from([None, 0.3, 0.45]),
       st.sampled_from([None, 0.25, 0.35]))
@settings(max_examples=120, deadline=None)
def test_allocation_feasible(streams, link, core):
    ic = Interconnect(TOPO, link_fraction=link, core_fraction=core)
    rates = ic.stream_rates(streams)
    assert np.all(rates > 0)
    # Node budgets.
    per_node = np.zeros(8)
    per_link = np.zeros(8)
    per_group: dict[int, float] = {}
    for s, r in zip(streams, rates):
        per_node[s.node] += r
        if s.socket != s.node:
            per_link[s.socket] += r
            per_link[s.node] += r
        per_group[s.group] = per_group.get(s.group, 0.0) + r
        # Per-stream cap.
        assert r <= ic.efficiency(s.socket, s.node) * BW + 1e-6
    assert np.all(per_node <= BW + 1e-6)
    if link is not None:
        assert np.all(per_link <= link * BW + 1e-6)
    if core is not None:
        for total in per_group.values():
            assert total <= core * BW + 1e-6


@given(stream_sets())
@settings(max_examples=60, deadline=None)
def test_allocation_deterministic(streams):
    ic = Interconnect(TOPO)
    a = ic.stream_rates(streams)
    b = ic.stream_rates(list(streams))
    assert np.array_equal(a, b)


@given(stream_sets())
@settings(max_examples=60, deadline=None)
def test_single_node_work_conservation(streams):
    """If every stream is local to one node, the node either saturates or
    every stream hits its cap (no bandwidth left on the table)."""
    localised = [StreamKey(0, 0, s.group) for s in streams]
    ic = Interconnect(TOPO, link_fraction=None, core_fraction=0.35)
    rates = ic.stream_rates(localised)
    total = rates.sum()
    n_groups = len({s.group for s in localised})
    cap_total = min(BW, 0.35 * BW * n_groups)
    assert total == pytest.approx(cap_total, rel=1e-6)

