"""Tests for the declarative fault-plan layer (repro.faults.plan / .spec)."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    CoreFault,
    CoreSlowdown,
    FaultPlan,
    NodeDegradation,
    TaskCrash,
    parse_core_fault,
    parse_core_slowdown,
    parse_node_degradation,
)
from repro.machine import two_socket


class TestEventValidation:
    def test_core_fault_negative_time(self):
        with pytest.raises(FaultError, match="must be >= 0"):
            CoreFault(core=0, at=-1.0)

    def test_core_fault_bad_duration(self):
        with pytest.raises(FaultError, match="duration"):
            CoreFault(core=0, at=0.0, duration=0.0)

    def test_permanent_fault_is_default(self):
        assert CoreFault(core=0, at=1.0).duration is None

    def test_slowdown_needs_factor_above_one(self):
        with pytest.raises(FaultError, match="factor"):
            CoreSlowdown(core=0, at=0.0, factor=1.0)

    def test_task_crash_probability_range(self):
        with pytest.raises(FaultError, match="probability"):
            TaskCrash(probability=1.5)

    def test_task_crash_fraction_range(self):
        with pytest.raises(FaultError, match="at_fraction"):
            TaskCrash(probability=0.5, at_fraction=2.0)

    def test_task_crash_negative_cap(self):
        with pytest.raises(FaultError, match="max_crashes"):
            TaskCrash(probability=0.5, max_crashes=-1)

    def test_degradation_factor_must_shrink(self):
        with pytest.raises(FaultError, match="factor"):
            NodeDegradation(node=0, at=0.0, factor=1.5)


class TestPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.n_events == 0
        assert plan.describe() == "(empty plan)"

    def test_counts_events(self):
        plan = FaultPlan(
            core_faults=(CoreFault(core=0, at=1.0),),
            task_crashes=(TaskCrash(probability=0.1),),
            partition_timeout=2.0,
        )
        assert not plan.is_empty()
        assert plan.n_events == 3

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(core_faults=[CoreFault(core=0, at=1.0)])
        assert isinstance(plan.core_faults, tuple)

    def test_wrong_event_type_rejected(self):
        with pytest.raises(FaultError, match="expects CoreFault"):
            FaultPlan(core_faults=(TaskCrash(probability=0.1),))

    def test_negative_partition_timeout(self):
        with pytest.raises(FaultError, match="partition_timeout"):
            FaultPlan(partition_timeout=-1.0)

    def test_validate_against_range_checks(self):
        topo = two_socket(cores_per_socket=2)  # cores 0..3, nodes 0..1
        FaultPlan(core_faults=(CoreFault(core=3, at=0.0),)).validate_against(topo)
        with pytest.raises(FaultError, match="out of range"):
            FaultPlan(core_faults=(CoreFault(core=4, at=0.0),)).validate_against(topo)
        with pytest.raises(FaultError, match="out of range"):
            FaultPlan(
                slowdowns=(CoreSlowdown(core=9, at=0.0, factor=2.0),)
            ).validate_against(topo)
        with pytest.raises(FaultError, match="out of range"):
            FaultPlan(
                node_degradations=(NodeDegradation(node=2, at=0.0, factor=0.5),)
            ).validate_against(topo)

    def test_killing_every_core_rejected(self):
        topo = two_socket(cores_per_socket=2)
        plan = FaultPlan(
            core_faults=tuple(CoreFault(core=c, at=0.0) for c in range(4))
        )
        with pytest.raises(FaultError, match="every core"):
            plan.validate_against(topo)

    def test_transient_kill_of_every_core_allowed(self):
        topo = two_socket(cores_per_socket=2)
        plan = FaultPlan(
            core_faults=tuple(
                CoreFault(core=c, at=float(c), duration=0.5) for c in range(4)
            )
        )
        plan.validate_against(topo)  # staggered transient faults recover

    def test_describe_mentions_each_family(self):
        plan = FaultPlan(
            core_faults=(CoreFault(core=3, at=1.5),),
            slowdowns=(CoreSlowdown(core=0, at=0.0, factor=4.0),),
            task_crashes=(TaskCrash(probability=0.1, match="dgemm"),),
            node_degradations=(NodeDegradation(node=2, at=1.0, factor=0.25),),
            partition_timeout=0.5,
        )
        text = plan.describe()
        assert "core 3 fails at t=1.5 permanently" in text
        assert "slows 4x" in text
        assert "'dgemm'" in text
        assert "node 2 bandwidth" in text
        assert "partition result lost" in text


class TestSerialisation:
    def plan(self):
        return FaultPlan(
            core_faults=(CoreFault(core=1, at=0.5, duration=2.0),),
            slowdowns=(CoreSlowdown(core=0, at=0.0, factor=2.0),),
            task_crashes=(TaskCrash(probability=0.2, match="t", max_crashes=3),),
            node_degradations=(NodeDegradation(node=1, at=1.0, factor=0.5),),
            partition_timeout=4.0,
        )

    def test_json_round_trip(self):
        plan = self.plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_empty_round_trip(self):
        assert FaultPlan.from_dict(FaultPlan().to_dict()) == FaultPlan()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = self.plan()
        plan.dump(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(FaultError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"core_fault": []})

    def test_unknown_event_field_rejected(self):
        with pytest.raises(FaultError, match="unknown fields"):
            FaultPlan.from_dict({"core_faults": [{"core": 0, "when": 1.0}]})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultError, match="invalid fault plan JSON"):
            FaultPlan.from_json("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(FaultError, match="JSON object"):
            FaultPlan.from_dict([1, 2, 3])


class TestSpecGrammar:
    def test_core_fault_permanent(self):
        assert parse_core_fault("3@1.5") == CoreFault(core=3, at=1.5)

    def test_core_fault_transient(self):
        assert parse_core_fault("3@1.5:2.0") == CoreFault(
            core=3, at=1.5, duration=2.0
        )

    def test_slowdown(self):
        assert parse_core_slowdown("0@0*4") == CoreSlowdown(
            core=0, at=0.0, factor=4.0
        )

    def test_slowdown_with_duration(self):
        assert parse_core_slowdown("1@2*2:5") == CoreSlowdown(
            core=1, at=2.0, factor=2.0, duration=5.0
        )

    def test_degradation(self):
        assert parse_node_degradation("2@1*0.25") == NodeDegradation(
            node=2, at=1.0, factor=0.25
        )

    @pytest.mark.parametrize("bad", ["3", "x@1", "3@y", "3@1:z"])
    def test_bad_core_fault_specs(self, bad):
        with pytest.raises(FaultError):
            parse_core_fault(bad)

    @pytest.mark.parametrize("bad", ["0@1", "0@1*x", "z@1*2"])
    def test_bad_slowdown_specs(self, bad):
        with pytest.raises(FaultError):
            parse_core_slowdown(bad)

    def test_bad_degradation_spec(self):
        with pytest.raises(FaultError, match="FACTOR"):
            parse_node_degradation("2@1")
