"""Dedicated tests for the synthetic generator-backed application."""

import pytest

from repro.apps import SyntheticApp, make_app
from repro.errors import ApplicationError
from repro.graph import weakly_connected_components
from repro.machine import bullion_s16
from repro.runtime import execute, execute_in_order, simulate
from repro.schedulers import make_scheduler


class TestKinds:
    @pytest.mark.parametrize("kind", ["chains", "stencil", "forkjoin",
                                      "tree", "random"])
    def test_all_kinds_build_and_verify(self, kind):
        app = SyntheticApp(kind=kind, scale=6, bytes_per_unit=4096)
        prog = app.build(8, with_payload=True)
        prog.validate()
        execute(prog)
        assert app.verify() == 0.0

    def test_unknown_kind(self):
        with pytest.raises(ApplicationError):
            SyntheticApp(kind="moebius")

    def test_negative_intensity(self):
        with pytest.raises(ApplicationError):
            SyntheticApp(compute_intensity=-1.0)

    def test_chains_kind_matches_generator(self):
        app = SyntheticApp(kind="chains", scale=6)
        prog = app.build(8)
        comps = weakly_connected_components(prog.tdg)
        assert len(comps) == 6

    def test_registry_entry(self):
        app = make_app("synthetic", kind="tree", scale=8)
        assert isinstance(app, SyntheticApp)


class TestEdgeBytes:
    def test_edge_bytes_scale_with_generator_weight(self):
        app = SyntheticApp(kind="chains", scale=2, bytes_per_unit=1000)
        prog = app.build(4)
        # Chain edges have generator weight 1 -> 1000 bytes each.
        weights = {w for _, _, w in prog.tdg.edges()}
        assert weights == {1000.0}

    def test_random_kind_deterministic_by_seed(self):
        a = SyntheticApp(kind="random", scale=6, seed=5).build(8)
        b = SyntheticApp(kind="random", scale=6, seed=5).build(8)
        assert sorted(a.tdg.edges()) == sorted(b.tdg.edges())


class TestSimulated:
    @pytest.mark.parametrize("kind", ["chains", "random"])
    def test_simulated_order_verifies(self, kind):
        topo = bullion_s16()
        app = SyntheticApp(kind=kind, scale=8, bytes_per_unit=16384, seed=1)
        prog = app.build(8, with_payload=True)
        res = simulate(prog, topo, make_scheduler("rgp+las", window_size=16),
                       seed=0)
        execute_in_order(prog, res.completion_order())
        assert app.verify() == 0.0

    def test_chains_partition_cleanly(self):
        """RGP on synthetic chains: near-zero remote traffic."""
        topo = bullion_s16()
        app = SyntheticApp(kind="chains", scale=16, bytes_per_unit=65536)
        prog = app.build(8)
        res = simulate(prog, topo,
                       make_scheduler("rgp+las", window_size=prog.n_tasks),
                       seed=0, steal=False, duration_jitter=0.0)
        assert res.remote_fraction < 0.05
