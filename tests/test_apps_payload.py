"""Numerical correctness of every application, under every scheduler.

The strongest end-to-end check in the suite: the scheduler must never
change the computed result, only the schedule.  Each app runs its real
numpy payload in the *simulated completion order* (which
``execute_in_order`` additionally validates against the TDG and barriers).
"""

import pytest

from repro.apps import APPS, make_app
from repro.machine import bullion_s16
from repro.runtime import execute, execute_in_order, simulate
from repro.schedulers import make_scheduler

#: Small payload configurations (fast but structurally non-trivial).
SMALL = {
    "nstream": dict(n_blocks=6, block_elems=128, iterations=3),
    "jacobi": dict(nt=3, tile=6, sweeps=3),
    "gauss-seidel": dict(nt=3, tile=6, sweeps=3),
    "redblack": dict(nt=3, tile=6, sweeps=3),
    "histogram": dict(nt=3, tile=6, n_bins=4, repeats=2),
    "cg": dict(nt=2, tile=8, iterations=4),
    "qr": dict(nt=3, tile=8),
    "symminv": dict(nt=3, tile=8),
    "synthetic": dict(kind="random", scale=8, bytes_per_unit=4096, seed=3),
}

TOLERANCES = {
    "synthetic": 0.0,
    "nstream": 0.0,
    "jacobi": 0.0,
    "gauss-seidel": 0.0,
    "redblack": 0.0,
    "histogram": 0.0,
    "cg": 1e-10,
    "qr": 1e-10,
    "symminv": 1e-8,
}

POLICIES = ("dfifo", "las", "ep", "random", "rgp", "rgp+las")


def test_small_covers_all_registered_apps():
    assert set(SMALL) == set(APPS)


@pytest.mark.parametrize("app_name", sorted(SMALL))
def test_sequential_execution_correct(app_name):
    app = make_app(app_name, **SMALL[app_name])
    prog = app.build(8, with_payload=True)
    execute(prog)
    assert app.verify() <= TOLERANCES[app_name]


@pytest.mark.parametrize("app_name", sorted(SMALL))
@pytest.mark.parametrize("policy", POLICIES)
def test_simulated_order_correct(app_name, policy):
    topo = bullion_s16()
    app = make_app(app_name, **SMALL[app_name])
    prog = app.build(topo.n_sockets, with_payload=True)
    kwargs = {"window_size": 16} if policy.startswith("rgp") else {}
    res = simulate(prog, topo, make_scheduler(policy, **kwargs), seed=2)
    execute_in_order(prog, res.completion_order())
    assert app.verify() <= TOLERANCES[app_name]


@pytest.mark.parametrize("app_name", sorted(SMALL))
def test_verify_requires_payload_build(app_name):
    from repro.errors import ApplicationError

    app = make_app(app_name, **SMALL[app_name])
    app.build(8)  # simulation mode
    with pytest.raises(ApplicationError):
        app.verify()


def test_cg_residual_decreases():
    app = make_app("cg", **SMALL["cg"])
    prog = app.build(8, with_payload=True)
    execute(prog)
    hist = app.residual_history()
    assert len(hist) == SMALL["cg"]["iterations"] + 1
    # 4 CG iterations on a 16x16 Laplace system: roughly one order of
    # magnitude off the initial residual.
    assert hist[-1] < hist[0] * 0.2
