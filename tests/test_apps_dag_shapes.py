"""Deeper DAG-shape tests: the apps' dependence structures match the
published algithms' known properties (kernel orders, wavefronts, phases).
"""

import numpy as np
import pytest

from repro.apps import make_app
from repro.graph import critical_path, levels, summarize, topological_order


def tasks_by_prefix(prog, prefix):
    return [t for t in prog.tasks if t.name.startswith(prefix)]


class TestQRDag:
    @pytest.fixture(scope="class")
    def prog(self):
        return make_app("qr", nt=4, tile=4).build(8)

    def test_panel_order(self, prog):
        """geqrt(k) must precede every tsqrt(i,k) which serialise in i."""
        name_to_tid = {t.name: t.tid for t in prog.tasks}
        lvl = levels(prog.tdg)
        for k in range(3):
            g = name_to_tid[f"geqrt({k})"]
            prev = g
            for i in range(k + 1, 4):
                t = name_to_tid[f"tsqrt({i},{k})"]
                assert lvl[t] > lvl[prev]
                prev = t

    def test_trailing_update_depends_on_panel(self, prog):
        name_to_tid = {t.name: t.tid for t in prog.tasks}
        ss = name_to_tid["ssrfb(1,0,1)"]
        preds = set(prog.tdg.predecessors(ss))
        assert name_to_tid["tsqrt(1,0)"] in preds  # Q2 producer
        assert name_to_tid["larfb(0,1)"] in preds  # panel row state

    def test_critical_path_runs_down_the_diagonal(self, prog):
        path = critical_path(prog.tdg)
        names = [prog.tasks[v].name for v in path]
        # The diagonal chain geqrt(0) ... geqrt/tsqrt of the last panel
        # must appear in order.
        assert any(n.startswith("geqrt(0)") or n.startswith("load")
                   for n in names[:2])
        assert names[-1].startswith(("ssrfb", "tsqrt", "geqrt"))

    def test_parallelism_grows_then_shrinks(self, prog):
        s = summarize(prog.tdg)
        assert s.max_width >= 4  # trailing updates are wide
        assert s.n_levels >= 10  # panels serialise


class TestSymmInvDag:
    @pytest.fixture(scope="class")
    def prog(self):
        return make_app("symminv", nt=4, tile=4).build(8)

    def test_three_epochs(self, prog):
        assert prog.n_epochs == 3
        kinds_by_epoch = {}
        for t in prog.tasks:
            kind = t.name.split("(")[0]
            kinds_by_epoch.setdefault(t.epoch, set()).add(kind)
        assert {"potrf", "trsm", "syrk", "gemm", "load"} >= kinds_by_epoch[0]
        assert kinds_by_epoch[1] == {"trtri", "w_acc"}
        assert kinds_by_epoch[2] == {"wtw"}

    def test_potrf_chain(self, prog):
        """potrf(k) transitively precedes potrf(k+1) via trsm/syrk."""
        name_to_tid = {t.name: t.tid for t in prog.tasks}
        lvl = levels(prog.tdg)
        for k in range(3):
            assert lvl[name_to_tid[f"potrf({k + 1})"]] > lvl[
                name_to_tid[f"potrf({k})"]
            ]

    def test_wtw_reads_all_column_tiles(self, prog):
        name_to_tid = {t.name: t.tid for t in prog.tasks}
        # Ainv(0,0) = sum over m of W(m,0)^T W(m,0): 4 distinct W producers.
        wtw = name_to_tid["wtw(0,0)"]
        pred_names = {prog.tasks[p].name for p in prog.tdg.predecessors(wtw)}
        producers = {n for n in pred_names if n.startswith(("trtri", "w_acc"))}
        assert len(producers) == 4


class TestCGDag:
    @pytest.fixture(scope="class")
    def prog(self):
        return make_app("cg", nt=2, tile=4, iterations=2).build(8)

    def test_alpha_fans_out_to_all_axpys(self, prog):
        name_to_tid = {t.name: t.tid for t in prog.tasks}
        alpha = name_to_tid["alpha0"]
        succ_names = {prog.tasks[s].name for s in prog.tdg.successors(alpha)}
        axpys = {n for n in succ_names if n.startswith("axpy")}
        assert len(axpys) == 2 * 4  # x and r updates for each of 4 tiles

    def test_iteration_chain_through_scalars(self, prog):
        """reduce -> alpha -> axpy_r -> dot -> reduce across iterations."""
        name_to_tid = {t.name: t.tid for t in prog.tasks}
        lvl = levels(prog.tdg)
        assert lvl[name_to_tid["reduce_rr1"]] > lvl[name_to_tid["alpha0"]]
        assert lvl[name_to_tid["alpha1"]] > lvl[name_to_tid["reduce_rr1"]]

    def test_spmv_reads_halos(self, prog):
        name_to_tid = {t.name: t.tid for t in prog.tasks}
        spmv = name_to_tid["spmv0(0,0)"]
        # init(0,0) + neighbour inits via p halos: (0,1) and (1,0).
        pred_names = {prog.tasks[p].name for p in prog.tdg.predecessors(spmv)}
        assert {"init(0,0)", "init(0,1)", "init(1,0)"} <= pred_names


class TestStencilDags:
    def test_jacobi_pingpong_alternates(self):
        prog = make_app("jacobi", nt=2, tile=4, sweeps=3).build(8)
        name_to_tid = {t.name: t.tid for t in prog.tasks}
        lvl = levels(prog.tdg)
        for s in range(2):
            assert lvl[name_to_tid[f"sweep{s + 1}(0,0)"]] > lvl[
                name_to_tid[f"sweep{s}(0,0)"]
            ]

    def test_gs_wavefront_depth(self):
        prog = make_app("gauss-seidel", nt=4, tile=4, sweeps=1,
                        barrier_between_sweeps=False).build(8)
        # A 4x4 tile wavefront: the last tile sits 2*(4-1) hops after the
        # first, plus the init level.
        name_to_tid = {t.name: t.tid for t in prog.tasks}
        lvl = levels(prog.tdg)
        depth = lvl[name_to_tid["gs0(3,3)"]] - lvl[name_to_tid["gs0(0,0)"]]
        assert depth == 6

    def test_histogram_repeats_pipeline_via_waw(self):
        """Frames share buffers: frame k+1's hpass must order after frame
        k's vpass of the same tile (WAR on the shared hs object)."""
        prog = make_app("histogram", nt=2, tile=4, n_bins=2,
                        repeats=2).build(8)
        name_to_tid = {t.name: t.tid for t in prog.tasks}
        h1 = name_to_tid["hpass1(0,0)"]
        preds = {prog.tasks[p].name for p in prog.tdg.predecessors(h1)}
        assert "vpass0(0,0)" in preds

    def test_redblack_barriers_alternate_colours(self):
        prog = make_app("redblack", nt=2, tile=4, sweeps=2).build(8)
        epochs = {}
        for t in prog.tasks:
            if t.name.startswith(("red", "black")):
                colour = t.name.split("0")[0].split("1")[0]
                epochs.setdefault(t.epoch, set()).add(colour)
        # Each barrier epoch holds a single colour.
        for colours in epochs.values():
            assert len(colours) == 1
