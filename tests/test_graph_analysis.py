"""Unit tests for TDG analyses (topological order, critical path, levels)."""

import numpy as np
import pytest

from repro.graph import (
    TaskGraph,
    chain,
    critical_path,
    critical_path_weight,
    fork_join,
    independent_chains,
    is_acyclic,
    level_widths,
    levels,
    summarize,
    topological_order,
    weakly_connected_components,
)


@pytest.fixture
def diamond():
    g = TaskGraph()
    for w in (1.0, 2.0, 5.0, 1.0):
        g.add_node(w)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 3)
    return g


class TestTopologicalOrder:
    def test_valid_order(self, diamond):
        order = topological_order(diamond)
        pos = {v: i for i, v in enumerate(order)}
        for src, dst, _ in diamond.edges():
            assert pos[src] < pos[dst]

    def test_complete(self, diamond):
        assert sorted(topological_order(diamond)) == [0, 1, 2, 3]

    def test_empty(self):
        assert topological_order(TaskGraph()) == []

    def test_acyclic_by_construction(self, diamond):
        assert is_acyclic(diamond)


class TestLevels:
    def test_diamond_levels(self, diamond):
        assert list(levels(diamond)) == [0, 1, 1, 2]

    def test_chain_levels(self):
        assert list(levels(chain(4))) == [0, 1, 2, 3]

    def test_level_widths(self, diamond):
        assert list(level_widths(diamond)) == [1, 2, 1]

    def test_independent_chains_widths(self):
        g = independent_chains(3, 5)
        assert list(level_widths(g)) == [3, 3, 3, 3, 3]


class TestCriticalPath:
    def test_diamond_weight(self, diamond):
        # Heaviest path 0 -> 2 -> 3 = 1 + 5 + 1.
        assert critical_path_weight(diamond) == 7.0

    def test_diamond_path(self, diamond):
        assert critical_path(diamond) == [0, 2, 3]

    def test_chain(self):
        g = chain(6, node_weight=2.0)
        assert critical_path_weight(g) == 12.0
        assert critical_path(g) == list(range(6))

    def test_empty(self):
        assert critical_path_weight(TaskGraph()) == 0.0
        assert critical_path(TaskGraph()) == []

    def test_fork_join(self):
        g = fork_join(width=4, n_phases=2)
        # source + (task + join) per phase.
        assert critical_path_weight(g) == 5.0


class TestComponents:
    def test_single_component(self, diamond):
        assert weakly_connected_components(diamond) == [[0, 1, 2, 3]]

    def test_independent_chains(self):
        comps = weakly_connected_components(independent_chains(4, 3))
        assert len(comps) == 4
        assert all(len(c) == 3 for c in comps)

    def test_isolated_nodes(self):
        g = TaskGraph()
        g.add_node()
        g.add_node()
        assert weakly_connected_components(g) == [[0], [1]]


class TestSummary:
    def test_summary_fields(self, diamond):
        s = summarize(diamond)
        assert s.n_nodes == 4
        assert s.n_edges == 4
        assert s.total_work == 9.0
        assert s.critical_path == 7.0
        assert s.n_levels == 3
        assert s.max_width == 2
        assert s.avg_parallelism == pytest.approx(9.0 / 7.0)
        assert s.n_components == 1

    def test_summary_str(self, diamond):
        assert "nodes=4" in str(summarize(diamond))
