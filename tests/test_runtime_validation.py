"""Tests for the record-level schedule validator."""

import pytest

from repro.errors import SimulationError
from repro.machine import bullion_s16, two_socket
from repro.runtime import TaskProgram, simulate, validate_schedule
from repro.runtime.result import SimulationResult, TaskRecord
from repro.schedulers import make_scheduler

from conftest import make_fan_program


def run(prog, topo, policy="las", seed=0):
    return simulate(prog, topo, make_scheduler(policy), seed=seed)


class TestAcceptsRealSchedules:
    @pytest.mark.parametrize("policy", ["dfifo", "las", "ep", "rgp+las"])
    def test_all_policies_produce_valid_schedules(self, topo8, policy):
        from repro.apps import make_app

        app = make_app("jacobi", nt=3, tile=8, sweeps=2)
        prog = app.build(8)
        res = run(prog, topo8, policy)
        validate_schedule(prog, res, topo8)

    def test_barriered_program(self, topo8):
        from repro.apps import make_app

        prog = make_app("symminv", nt=3, tile=8).build(8)
        res = run(prog, topo8)
        validate_schedule(prog, res, topo8)


def _result_from_records(records, makespan, topo):
    import numpy as np

    return SimulationResult(
        program_name="x", scheduler_name="y", machine_name=topo.name,
        makespan=makespan, records=records,
        bytes_by_pair=np.zeros((topo.n_sockets, topo.n_sockets)),
        busy_time_per_socket=np.zeros(topo.n_sockets),
    )


class TestRejectsBrokenSchedules:
    def setup_method(self):
        self.topo = two_socket(cores_per_socket=2)
        self.prog = TaskProgram()
        a = self.prog.data("a", 4096)
        self.prog.task("w", outs=[a], work=1.0)
        self.prog.task("r", ins=[a], work=1.0)
        self.prog.finalize()

    def test_missing_task(self):
        records = [TaskRecord(0, "w", 0, 0, 0.0, 1.0)]
        res = _result_from_records(records, 1.0, self.topo)
        with pytest.raises(SimulationError, match="covers"):
            validate_schedule(self.prog, res, self.topo)

    def test_dependence_violation(self):
        records = [
            TaskRecord(0, "w", 0, 0, 0.0, 1.0),
            TaskRecord(1, "r", 0, 1, 0.5, 1.5),  # starts before w finishes
        ]
        res = _result_from_records(records, 1.5, self.topo)
        with pytest.raises(SimulationError, match="dependence violated"):
            validate_schedule(self.prog, res, self.topo)

    def test_core_overlap(self):
        records = [
            TaskRecord(0, "w", 0, 0, 0.0, 1.0),
            TaskRecord(1, "r", 0, 0, 0.5, 2.0),  # same core, overlapping
        ]
        res = _result_from_records(records, 2.0, self.topo)
        with pytest.raises(SimulationError, match="overlap"):
            validate_schedule(self.prog, res, self.topo)

    def test_wrong_socket_for_core(self):
        records = [
            TaskRecord(0, "w", 1, 0, 0.0, 1.0),  # core 0 is socket 0
            TaskRecord(1, "r", 0, 1, 1.0, 2.0),
        ]
        res = _result_from_records(records, 2.0, self.topo)
        with pytest.raises(SimulationError, match="belongs"):
            validate_schedule(self.prog, res, self.topo)

    def test_negative_duration(self):
        records = [
            TaskRecord(0, "w", 0, 0, 1.0, 0.5),
            TaskRecord(1, "r", 0, 1, 1.0, 2.0),
        ]
        res = _result_from_records(records, 2.0, self.topo)
        with pytest.raises(SimulationError, match="before it starts"):
            validate_schedule(self.prog, res, self.topo)

    def test_barrier_violation(self):
        prog = TaskProgram()
        prog.task("a", work=1.0)
        prog.barrier()
        prog.task("b", work=1.0)
        prog.finalize()
        records = [
            TaskRecord(0, "a", 0, 0, 0.0, 2.0),
            TaskRecord(1, "b", 0, 1, 1.0, 3.0),  # starts inside epoch 0
        ]
        res = _result_from_records(records, 3.0, self.topo)
        with pytest.raises(SimulationError, match="barrier violated"):
            validate_schedule(prog, res, self.topo)

    def test_finish_after_makespan(self):
        records = [
            TaskRecord(0, "w", 0, 0, 0.0, 5.0),
            TaskRecord(1, "r", 0, 1, 5.0, 6.0),
        ]
        res = _result_from_records(records, 2.0, self.topo)
        with pytest.raises(SimulationError, match="makespan"):
            validate_schedule(self.prog, res, self.topo)


class TestRuntimeDrainage:
    """``validate_schedule(..., simulator=sim)``: end-of-run drain checks.

    Pipelined RGP parks tasks under a window key and wakes them through
    ``Simulator.reoffer_key``; these regressions pin that the validator
    catches both a leaked ``parked_by_key`` index (run completes anyway)
    and a skipped ``reoffer_key`` (run stalls outright).
    """

    def _pipelined_sim(self, seed=0):
        from repro.machine.interconnect import Interconnect
        from repro.runtime import Simulator

        topo = two_socket(cores_per_socket=2)
        prog = make_fan_program(width=6)
        sim = Simulator(
            prog, topo,
            make_scheduler("rgp", window_size=4, propagation="repartition",
                           partition_delay=0.1, prefetch_threshold=0.5),
            interconnect=Interconnect(topo), seed=seed, verify=False,
        )
        return prog, topo, sim

    def test_pipelined_run_validates_clean(self):
        prog, topo, sim = self._pipelined_sim()
        res = sim.run()
        validate_schedule(prog, res, topo, simulator=sim)

    def test_parked_by_key_leak_detected(self, monkeypatch):
        from repro.runtime import Simulator

        orig = Simulator.reoffer

        def leaky(self, tasks):
            snapshot = {k: list(v) for k, v in self.parked_by_key.items()}
            orig(self, tasks)
            # "Forget" the index cleanup: tasks run, but the key stays.
            self.parked_by_key.update(snapshot)

        monkeypatch.setattr(Simulator, "reoffer", leaky)
        prog, topo, sim = self._pipelined_sim()
        res = sim.run()
        with pytest.raises(SimulationError, match="parked_by_key"):
            validate_schedule(prog, res, topo, simulator=sim)

    def test_skipped_reoffer_key_stalls_run(self, monkeypatch):
        from repro.runtime import Simulator

        monkeypatch.setattr(
            Simulator, "reoffer_key", lambda self, key: None
        )
        prog, topo, sim = self._pipelined_sim()
        with pytest.raises(SimulationError):
            sim.run()
        # The stall leaves the parked index populated; the drain check
        # names it even on the aborted state.
        with pytest.raises(SimulationError, match="parked"):
            from repro.runtime.validation import _check_runtime_drained

            _check_runtime_drained(sim, None)

    def test_pending_window_with_unscheduled_tasks_detected(self):
        from repro.core.rgp import WINDOW_PENDING

        prog, topo, sim = self._pipelined_sim()
        res = sim.run()
        # Forge a stuck window covering a task with no record.
        sim.scheduler._window_state[0] = WINDOW_PENDING
        res.records[:] = [r for r in res.records if r.tid != 0]
        with pytest.raises(SimulationError, match="left 'pending'"):
            validate_schedule(prog, res, topo, simulator=sim)
