"""Shared fixtures: small machines and programs used across the suite."""

from __future__ import annotations

import os

import pytest

# Run the whole suite with the online invariant checker armed: every
# Simulator constructed anywhere in the tests carries the repro.verify
# probe unless a test opts out explicitly (verify=False or monkeypatched
# env).  Tests asserting the zero-overhead guarantee construct their
# simulators with explicit ``verify=`` so this default never skews them.
os.environ.setdefault("REPRO_VERIFY", "1")

from repro.machine import bullion_s16, two_socket
from repro.runtime import TaskProgram


@pytest.fixture
def topo2():
    """Two sockets x 2 cores — smallest interesting NUMA machine."""
    return two_socket(cores_per_socket=2)


@pytest.fixture
def topo8():
    """The paper's bullion S16 model."""
    return bullion_s16()


@pytest.fixture
def chain_program():
    """Three-task chain: init writes, two increments follow."""
    prog = TaskProgram("chain")
    a = prog.data("a", 8192)
    prog.task("t0", outs=[a], work=1.0)
    prog.task("t1", inouts=[a], work=1.0)
    prog.task("t2", inouts=[a], work=1.0)
    return prog.finalize()


def make_fan_program(width: int = 8, obj_bytes: int = 65536) -> TaskProgram:
    """One producer per lane, one consumer per lane, plus a final join."""
    prog = TaskProgram("fan")
    lanes = []
    for i in range(width):
        a = prog.data(f"a{i}", obj_bytes)
        prog.task(f"prod{i}", outs=[a], work=0.5)
        lanes.append(a)
    for i, a in enumerate(lanes):
        prog.task(f"cons{i}", ins=[a], work=0.5)
    sink = prog.data("sink", 4096)
    prog.task("join", ins=lanes, outs=[sink], work=0.1)
    return prog.finalize()


@pytest.fixture
def fan_program():
    return make_fan_program()
