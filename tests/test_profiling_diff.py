"""Differential profiling: EP vs RGP+LAS attribution (the paper's thesis).

Acceptance (ISSUE PR 7): ``repro profile diff`` between EP and RGP+LAS
on a figure-1 app attributes the speedup predominantly to reduced
remote-memory time.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import make_app
from repro.errors import ProfilingError
from repro.experiments.config import ExperimentConfig
from repro.machine import presets
from repro.machine.interconnect import Interconnect
from repro.observability import Instrumentation, RingBufferSink
from repro.profiling import COMPONENTS, diff_profiles, profile_run
from repro.runtime.simulator import Simulator
from repro.schedulers import make_scheduler


def _profiled(scheduler_name, *, sched_kwargs=None, app="jacobi",
              machine="bullion-s16", seed=0):
    cfg = ExperimentConfig.quick()
    topo = presets.by_name(machine)
    params = dict(cfg.app_params.get(app, {}))
    program = make_app(app, **params).build(topo.n_sockets)
    interconnect = Interconnect(
        topo, remote_penalty_exp=cfg.remote_penalty_exp,
        link_fraction=cfg.link_fraction, core_fraction=cfg.core_fraction,
    )
    obs = Instrumentation(sink=RingBufferSink(1 << 20))
    sim = Simulator(
        program, topo, make_scheduler(scheduler_name, **(sched_kwargs or {})),
        interconnect=interconnect, seed=seed, steal=cfg.steal, instrument=obs,
    )
    result = sim.run()
    return profile_run(program, result, topo, interconnect=interconnect)


@pytest.fixture(scope="module")
def ep_vs_rgp():
    cfg = ExperimentConfig.quick()
    report_ep = _profiled("ep")
    report_rgp = _profiled(
        "rgp+las", sched_kwargs={"window_size": cfg.window_size},
    )
    return report_ep, report_rgp, diff_profiles(report_ep, report_rgp)


# ---------------------------------------------------------------------------
# Acceptance: the speedup is predominantly reduced remote-memory time.


def test_rgp_las_beats_ep(ep_vs_rgp):
    report_ep, report_rgp, diff = ep_vs_rgp
    assert report_rgp.makespan < report_ep.makespan
    assert diff.delta_makespan > 0
    assert diff.delta_makespan == pytest.approx(
        report_ep.makespan - report_rgp.makespan
    )


def test_speedup_attributed_to_remote_memory(ep_vs_rgp):
    _, _, diff = ep_vs_rgp
    # Both lenses agree: the dominant saved component is remote-memory
    # time — the paper's thesis, recovered from the traces alone.
    assert diff.dominant_machine_component() == "mem_remote"
    assert diff.dominant_component() == "mem_remote"
    assert diff.delta_machine["mem_remote"] > 0
    assert diff.delta_components["mem_remote"] > 0


def test_component_deltas_sum_to_makespan_delta(ep_vs_rgp):
    _, _, diff = ep_vs_rgp
    assert sum(diff.delta_components.values()) == pytest.approx(
        diff.delta_makespan, abs=1e-6
    )
    assert set(diff.delta_components) == set(COMPONENTS)


def test_whatif_predicts_remote_local_gain(ep_vs_rgp):
    report_ep, report_rgp, _ = ep_vs_rgp
    # Coz-style what-if on the EP run: converting remote accesses to
    # local predicts a substantial makespan reduction, in the same
    # direction (and rough magnitude) as what RGP+LAS actually achieves.
    predicted = report_ep.whatif_remote_local()
    assert predicted < report_ep.makespan * 0.9
    actual_gain = report_ep.makespan - report_rgp.makespan
    predicted_gain = report_ep.makespan - predicted
    assert predicted_gain > 0.4 * actual_gain


def test_task_moves_ranked_by_magnitude(ep_vs_rgp):
    _, _, diff = ep_vs_rgp
    moves = diff.task_moves
    assert moves
    magnitudes = [abs(delta) for _, _, delta in moves]
    assert magnitudes == sorted(magnitudes, reverse=True)


def test_diff_render_and_dict(ep_vs_rgp):
    _, _, diff = ep_vs_rgp
    text = diff.render()
    assert "dominant source: mem_remote" in text
    assert "what-if on a" in text
    doc = diff.to_dict()
    json.dumps(doc)
    assert doc["dominant_machine_component"] == "mem_remote"
    assert doc["delta_makespan"] > 0


# ---------------------------------------------------------------------------
# Alignment rules.


def test_diff_rejects_different_programs():
    a = _profiled("ep", app="jacobi")
    b = _profiled("ep", app="nstream")
    with pytest.raises(ProfilingError, match="different programs"):
        diff_profiles(a, b)


def test_diff_rejects_different_machines():
    a = _profiled("ep", machine="bullion-s16")
    b = _profiled("ep", machine="two-socket")
    with pytest.raises(ProfilingError, match="different machines"):
        diff_profiles(a, b)


def test_self_diff_is_zero():
    a = _profiled("ep")
    diff = diff_profiles(a, a)
    assert diff.delta_makespan == 0.0
    assert all(v == pytest.approx(0.0) for v in diff.delta_components.values())
    assert all(v == pytest.approx(0.0) for v in diff.delta_machine.values())
