"""Differential oracle: production simulator vs naive reference replay.

The :class:`~repro.verify.oracle.ReferenceSimulator` replays a recorded
production run (placements + jitter + timer events) with none of the
production shortcuts — no placement cache, no event bus, no pipelining
state — and must agree *bit for bit* on every record and byte counter.
These tests pin that agreement across the policy matrix, exercise the
JSON repro-file round trip, and prove the oracle actually detects
tampering (a diff harness that cannot fail proves nothing).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import VerificationError
from repro.machine import two_socket
from repro.machine.interconnect import Interconnect
from repro.runtime import Simulator, TaskProgram
from repro.schedulers import make_scheduler
from repro.verify import (
    POLICY_MATRIX,
    DecisionRecorder,
    OracleParams,
    ReferenceSimulator,
    VerifyCase,
    differential_run,
    make_case,
    program_from_dict,
    program_to_dict,
    replay_file,
    run_case,
    save_repro,
)


def _labels():
    return [label for label, _, _ in POLICY_MATRIX]


# ----------------------------------------------------------------------
# Bit-exact agreement across the policy matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label", _labels())
@pytest.mark.parametrize("seed", [0, 7])
def test_oracle_agrees_on_fuzz_case(label, seed):
    entry = next(e for e in POLICY_MATRIX if e[0] == label)
    case = make_case(seed, label, entry[1], entry[2])
    report = run_case(case)
    assert report.status in ("ok", "production-error"), report.summary()
    if report.status == "ok":
        assert not report.divergences


def test_differential_run_named_app():
    report = differential_run(
        "rgp+las", "jacobi", "two-socket",
        scheduler_kwargs={"window_size": 16},
        seed=3, duration_jitter=0.05,
    )
    assert report.status == "ok", report.summary()
    assert report.result.makespan == report.oracle.makespan


def test_differential_run_with_faults(tmp_path):
    from repro.faults import CoreFault, FaultPlan, TaskCrash

    plan = FaultPlan(
        core_faults=(CoreFault(core=1, at=0.2, duration=0.5),),
        task_crashes=(TaskCrash(probability=0.1, max_crashes=2),),
    )
    report = differential_run(
        "las", "jacobi", "two-socket",
        faults=plan, seed=11, max_retries=8,
    )
    assert report.status == "ok", report.summary()
    # Fault-injected traffic (crashed attempts) must match too.
    assert report.result.local_bytes == report.oracle.local_bytes
    assert report.result.remote_bytes == report.oracle.remote_bytes


# ----------------------------------------------------------------------
# The oracle must *detect* divergence, not just rubber-stamp
# ----------------------------------------------------------------------
def _recorded_run(seed=5):
    topo = two_socket(cores_per_socket=2)
    prog = TaskProgram("t")
    objs = [prog.data(f"a{i}", 65536) for i in range(4)]
    for i, a in enumerate(objs):
        prog.task(f"p{i}", outs=[a], work=0.5)
    for i, a in enumerate(objs):
        prog.task(f"c{i}", ins=[a], work=0.5)
    program = prog.finalize()
    rec = DecisionRecorder()
    sim = Simulator(
        program, topo, make_scheduler("las"),
        interconnect=Interconnect(topo), seed=seed, probe=rec,
        duration_jitter=0.05,
    )
    rec.attach(sim)
    result = sim.run()
    return program, topo, sim, rec.trace, result


def test_oracle_detects_tampered_jitter():
    program, topo, sim, trace, result = _recorded_run()
    (key, factor) = next(iter(trace.jitter.items()))
    trace.jitter[key] = factor * 1.5
    oracle = ReferenceSimulator(
        program, topo, Interconnect(topo), trace,
        OracleParams.of_simulator(sim),
    )
    outcome = oracle.run()
    # The tampered attempt runs at a different speed — its finish moves.
    ours = {r.tid: r.finish for r in outcome.records}
    theirs = {r.tid: r.finish for r in result.records}
    assert ours != theirs


def test_oracle_desyncs_on_truncated_placements():
    program, topo, sim, trace, _ = _recorded_run()
    # Drop one recorded placement: the replay runs out of decisions.
    tid = next(iter(trace.placements))
    trace.placements[tid].pop()
    oracle = ReferenceSimulator(
        program, topo, Interconnect(topo), trace,
        OracleParams.of_simulator(sim),
    )
    with pytest.raises(VerificationError):
        oracle.run()


# ----------------------------------------------------------------------
# Serialization: repro files and program round trips
# ----------------------------------------------------------------------
def test_program_round_trip():
    prog = TaskProgram("rt")
    a = prog.data("a", 8192, initial_node=1)
    b = prog.data("b", 4096)
    prog.task("t0", outs=[a], work=1.0)
    prog.task("t1", ins=[a], outs=[b], work=0.5, meta={"ep_socket": 1})
    prog.barrier()
    prog.task("t2", inouts=[b], work=0.25)
    program = prog.finalize()

    clone = program_from_dict(json.loads(json.dumps(program_to_dict(program))))
    assert clone.n_tasks == program.n_tasks
    assert [t.epoch for t in clone.tasks] == [t.epoch for t in program.tasks]
    assert [t.work for t in clone.tasks] == [t.work for t in program.tasks]
    for tid in range(program.n_tasks):
        assert sorted(clone.tdg.successors(tid)) == sorted(
            program.tdg.successors(tid)
        )


def test_repro_file_round_trip(tmp_path):
    entry = POLICY_MATRIX[0]
    case = make_case(4, entry[0], entry[1], entry[2])
    report = run_case(case)
    assert report.status == "ok"
    path = save_repro(report, str(tmp_path))
    assert os.path.exists(path)
    replayed = replay_file(path)
    assert replayed.status == "ok", replayed.summary()
    assert replayed.result.makespan == pytest.approx(
        report.result.makespan, rel=1e-12
    )


def test_repro_file_name_collision(tmp_path):
    entry = POLICY_MATRIX[0]
    case = make_case(4, entry[0], entry[1], entry[2])
    report = run_case(case)
    p1 = save_repro(report, str(tmp_path))
    p2 = save_repro(report, str(tmp_path))
    assert p1 != p2 and os.path.exists(p1) and os.path.exists(p2)


def test_verify_case_from_faulted_run_round_trips(tmp_path):
    from repro.faults import FaultPlan, TaskCrash

    entry = next(e for e in POLICY_MATRIX if e[0] == "rgp-pipelined")
    case = make_case(9, entry[0], entry[1], entry[2])
    if case.faults is None:
        case = VerifyCase(
            program=case.program, topology=case.topology,
            scheduler=case.scheduler, scheduler_kwargs=case.scheduler_kwargs,
            interconnect_kwargs=case.interconnect_kwargs,
            sim_kwargs=case.sim_kwargs,
            faults=FaultPlan(task_crashes=(TaskCrash(probability=0.1),)),
            label=case.label,
        )
    report = run_case(case)
    assert report.status == "ok", report.summary()
    path = save_repro(report, str(tmp_path))
    assert replay_file(path).status == "ok"
