"""Tests for the reactive page-migration baseline (OS-style, §1)."""

import numpy as np
import pytest

from repro.machine import bullion_s16
from repro.runtime import Simulator, TaskProgram, simulate
from repro.schedulers import MigratingLASWrapper, make_scheduler


def remote_reuse_program(n_objects=8, reuse=12, nbytes=262144):
    """Objects pre-bound on socket 0, repeatedly read by tasks that LAS
    will pin to socket 0's queue — then force remote reuse by annotating
    EP on far sockets and using the EP inner policy via meta."""
    p = TaskProgram("reuse")
    objs = [p.data(f"o{i}", nbytes, initial_node=0) for i in range(n_objects)]
    for r in range(reuse):
        for i, o in enumerate(objs):
            p.task(f"r{r}_{i}", ins=[o], work=0.05)
    return p.finalize()


class TestMigrationMechanics:
    def test_daemon_migrates_hot_remote_objects(self, topo8):
        # Pin all tasks to socket 5 while data lives on socket 0: the daemon
        # must move the pages to socket 5.
        from repro.runtime import Placement
        from repro.schedulers.base import Scheduler

        class Pin5(Scheduler):
            name = "pin5"

            def choose(self, task):
                return Placement(socket=5)

        prog = remote_reuse_program()
        sched = MigratingLASWrapper(period=3.0, inner=Pin5())
        sim = Simulator(prog, topo8, sched, seed=0, steal=False)
        sim.run()
        assert sched.pages_migrated > 0
        assert sched.migration_rounds >= 1
        # After the run, hot objects live on the referencing socket.
        assert sim.memory.bytes_on_node[5] > 0

    def test_migration_helps_static_remote_workload(self, topo8):
        """Reactive migration must beat plain LAS when data starts in the
        wrong place and is reused heavily — and both must account the same
        total work."""
        from repro.runtime import Placement
        from repro.schedulers.base import Scheduler

        class Pin5(Scheduler):
            name = "pin5"

            def choose(self, task):
                return Placement(socket=5)

        prog = remote_reuse_program(reuse=16)
        plain = simulate(prog, topo8, Pin5(), seed=0, steal=False,
                         duration_jitter=0.0)
        migrated = simulate(
            prog, topo8, MigratingLASWrapper(period=2.0, inner=Pin5()),
            seed=0, steal=False, duration_jitter=0.0,
        )
        assert migrated.makespan < plain.makespan

    def test_registry_and_kwargs(self, topo8):
        sched = make_scheduler("las+migrate", period=5.0, top_k=4)
        assert sched.period == 5.0
        prog = remote_reuse_program(reuse=4)
        res = simulate(prog, topo8, sched, seed=0)
        assert res.n_tasks == prog.n_tasks

    def test_bad_params(self):
        with pytest.raises(ValueError):
            MigratingLASWrapper(period=0.0)
        with pytest.raises(ValueError):
            MigratingLASWrapper(top_k=0)

    def test_daemon_stops_with_program(self, topo8):
        """The daemon must not keep the simulation alive forever."""
        prog = remote_reuse_program(n_objects=2, reuse=2)
        res = simulate(prog, topo8, MigratingLASWrapper(period=0.5), seed=0)
        assert res.n_tasks == prog.n_tasks


class TestMigrationVsRGP:
    def test_rgp_beats_reactive_migration_on_nstream(self, topo8):
        """The paper's core claim: proactive placement (RGP) beats reacting
        after the damage is done."""
        from repro.apps import make_app
        from repro.experiments import ExperimentConfig

        cfg = ExperimentConfig.quick(seeds=(0, 1))
        prog = make_app("nstream", n_blocks=40, block_elems=16 * 1024,
                        iterations=8).build(8)

        def mean(policy_factory):
            out = []
            for seed in (0, 1):
                sim = Simulator(prog, topo8, policy_factory(),
                                interconnect=cfg.interconnect(),
                                steal=cfg.steal, seed=seed)
                out.append(sim.run().makespan)
            return float(np.mean(out))

        rgp = mean(lambda: make_scheduler("rgp+las"))
        mig = mean(lambda: make_scheduler("las+migrate", period=5.0))
        assert rgp < mig * 1.02
