"""Unit tests for data objects and accesses."""

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import AccessMode, DataAccess, DataObject, reads_of, writes_of


def obj(size=4096, **kwargs):
    return DataObject(key=0, name="a", size_bytes=size, **kwargs)


class TestAccessMode:
    def test_reads_writes(self):
        assert AccessMode.IN.reads and not AccessMode.IN.writes
        assert AccessMode.OUT.writes and not AccessMode.OUT.reads
        assert AccessMode.INOUT.reads and AccessMode.INOUT.writes

    def test_traffic_multiplier(self):
        assert AccessMode.IN.traffic_multiplier == 1
        assert AccessMode.OUT.traffic_multiplier == 1
        assert AccessMode.INOUT.traffic_multiplier == 2


class TestDataObject:
    def test_basic(self):
        o = obj(100)
        assert o.size_bytes == 100

    def test_zero_size_rejected(self):
        with pytest.raises(RuntimeStateError):
            obj(0)

    def test_initial_node_and_interleaved_exclusive(self):
        with pytest.raises(RuntimeStateError):
            obj(100, initial_node=1, interleaved=True)

    def test_repr(self):
        assert "4096B" in repr(obj())


class TestDataAccess:
    def test_full_object_bytes(self):
        a = DataAccess(obj(1000), AccessMode.IN)
        assert a.bytes == 1000
        assert a.traffic_bytes == 1000

    def test_range_bytes(self):
        a = DataAccess(obj(1000), AccessMode.OUT, offset=100, length=200)
        assert a.bytes == 200

    def test_inout_traffic_doubles(self):
        a = DataAccess(obj(1000), AccessMode.INOUT)
        assert a.traffic_bytes == 2000

    def test_out_of_range(self):
        with pytest.raises(RuntimeStateError):
            DataAccess(obj(100), AccessMode.IN, offset=50, length=100)

    def test_negative_offset(self):
        with pytest.raises(RuntimeStateError):
            DataAccess(obj(100), AccessMode.IN, offset=-1)

    def test_filters(self):
        accesses = [
            DataAccess(obj(10), AccessMode.IN),
            DataAccess(obj(10), AccessMode.OUT),
            DataAccess(obj(10), AccessMode.INOUT),
        ]
        assert len(reads_of(accesses)) == 2
        assert len(writes_of(accesses)) == 2
