"""Flat (struct-of-arrays) event engine: bit-identity and drain contracts.

PR 8 moved the simulator hot loop onto :class:`repro.runtime.engines.
FlatEngine`; the per-event :class:`~repro.runtime.engines.ObjectEngine`
stays behind as the oracle twin.  These tests pin the contracts that
rewrite rides on:

* rate-epoch drain against precomputed *absolute* deadlines leaves exact
  zero residues (no ``1e-12`` crumbs from incremental subtraction);
* flat and object engines produce bit-identical schedules — on the
  committed corpus, on fresh policy-matrix cases, and on a 10k-task
  serial chain;
* a tiny wall-clock limit aborts promptly with every core returned to
  the idle pools (the PR 4 ``_abort_run`` contract, now per engine);
* ``REPRO_CHECK_CACHE=1`` arms the engine's internal mask/mirror oracle;
* the compiled rate solver is bit-identical to the pure-python one;
* the memory manager's unbound-page counter matches a full recount.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machine import presets, two_socket
from repro.machine.interconnect import Interconnect
from repro.machine.memory import UNBOUND, MemoryManager
from repro.runtime import Simulator, TaskProgram
from repro.runtime.engines import _INF, FlatEngine, ObjectEngine
from repro.schedulers import make_scheduler
from repro.verify import VerifyCase, compare_engines, make_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

RECORD_FIELDS = (
    "tid", "core", "socket", "attempt", "start", "finish",
    "local_bytes", "remote_bytes",
)


def record_tuple(r):
    return tuple(getattr(r, f) for f in RECORD_FIELDS)


def serial_chain(n_tasks: int, nbytes: int = 65536) -> TaskProgram:
    """``n_tasks`` tasks in one dependence chain through a single object."""
    p = TaskProgram("serial-chain")
    a = p.data("a", nbytes)
    p.task("init", outs=[a], work=0.3)
    for i in range(n_tasks - 1):
        p.task(f"t{i}", inouts=[a], work=0.3)
    return p.finalize()


def stencil_program(n_sockets: int, scale: int = 6) -> TaskProgram:
    from repro.apps import make_app

    return make_app("synthetic", kind="stencil", scale=scale).build(n_sockets)


class TestSerialChainDrain:
    """Satellite 1: absolute-deadline drain leaves exact zero residues."""

    def test_10k_chain_exact_residues_and_order(self):
        prog = serial_chain(10_000)
        topo = two_socket(cores_per_socket=2)
        sim = Simulator(
            prog, topo, make_scheduler("las"), engine="flat", verify=False
        )
        assert isinstance(sim.engine, FlatEngine)
        residues = []
        orig_remove = sim.engine.remove

        def spy(rt):
            orig_remove(rt)
            residues.append((rt.compute_remaining, tuple(rt.streams.values())))

        sim.engine.remove = spy
        flat = sim.run()

        # Every completion drained to *exactly* zero: the engine snaps to
        # the precomputed absolute deadline instead of subtracting one
        # epoch at a time, so no float crumbs survive.
        assert len(residues) == prog.n_tasks
        for c_rem, streams in residues:
            assert c_rem == 0.0
            assert all(b == 0.0 for b in streams)

        # A serial chain admits exactly one completion order.
        assert [r.tid for r in flat.records] == list(range(prog.n_tasks))
        finishes = [r.finish for r in flat.records]
        assert finishes == sorted(finishes)

        # And the oracle twin agrees bit for bit.
        obj_sim = Simulator(
            prog, topo, make_scheduler("las"), engine="object", verify=False
        )
        assert isinstance(obj_sim.engine, ObjectEngine)
        obj = obj_sim.run()
        assert flat.makespan == obj.makespan
        assert [record_tuple(r) for r in flat.records] == [
            record_tuple(r) for r in obj.records
        ]


class TestCheckModeEquivalence:
    """Satellite 2: REPRO_CHECK_CACHE=1 arms the engine's internal oracle
    (mask==bytes, slot-mirror consistency) and the schedules still match."""

    def test_check_mode_engines_agree(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_CACHE", "1")
        topo = presets.by_name("four-socket")
        prog = stencil_program(topo.n_sockets)
        results = {}
        for engine in ("flat", "object"):
            sim = Simulator(
                prog, topo, make_scheduler("rgp+las", window_size=8),
                engine=engine,
            )
            assert sim.engine.check is True
            results[engine] = sim.run()
        flat, obj = results["flat"], results["object"]
        assert flat.makespan == obj.makespan
        assert [record_tuple(r) for r in flat.records] == [
            record_tuple(r) for r in obj.records
        ]


class TestWallClockAbort:
    """Satellite 3: a tiny budget aborts promptly and leaves no
    phantom-busy cores (the ``_abort_run`` contract, per engine)."""

    @pytest.mark.parametrize("engine", ["flat", "object"])
    def test_tiny_limit_returns_cores_to_idle(self, engine):
        topo = two_socket(cores_per_socket=2)
        prog = stencil_program(topo.n_sockets, scale=8)
        sim = Simulator(
            prog, topo, make_scheduler("las"),
            wall_clock_limit=1e-9, engine=engine,
        )
        with pytest.raises(SimulationError, match="wall-clock limit"):
            sim.run()
        # No half-drained attempts, every core back in an idle pool, and
        # the engine itself is empty (nothing left to complete).
        assert not sim.running
        idle = sorted(core for cores in sim.idle_cores for core in cores)
        assert idle == list(range(topo.n_cores))
        assert sim.engine.next_completion() == _INF
        assert sim.engine.completed() == []


class TestEngineBitIdentity:
    """Tentpole acceptance: flat == object, exactly, everywhere."""

    @pytest.mark.parametrize(
        "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
    )
    def test_corpus_case(self, path):
        report = compare_engines(VerifyCase.load(path))
        assert report.status == "ok", report.summary()

    @pytest.mark.parametrize(
        "label,scheduler,kwargs",
        [
            ("las", "las", {}),
            ("rgp+las", "rgp+las", {"window_size": 8}),
            ("dfifo", "dfifo", {}),
        ],
    )
    def test_fresh_fuzz_case(self, label, scheduler, kwargs):
        # A fresh (non-corpus) scenario per policy: random topology,
        # program, fault plan and jitter from the fuzz generator.
        case = make_case(1234, label, scheduler, dict(kwargs))
        report = compare_engines(case)
        assert report.status == "ok", report.summary()

    def test_fresh_cluster_fuzz_case(self):
        # Seed 99 deterministically draws a multi-box cluster topology:
        # message events and NIC contention ride the same bit-identity
        # contract as single-box runs.
        case = make_case(99, "rgp+las", "rgp+las", {"window_size": 8})
        assert getattr(case.topology, "n_boxes", 1) > 1
        report = compare_engines(case)
        assert report.status == "ok", report.summary()

    def test_corpus_includes_grain_swept_cases(self):
        labels = [VerifyCase.load(p).label or "" for p in CORPUS]
        assert sum("grain-fine" in label for label in labels) >= 2, (
            "corpus must keep the 10x-finer-tile scenarios"
        )


class TestCSolverTwin:
    """The compiled rate solver must be bit-identical to the python one."""

    def test_randomized_configs_exact(self):
        topo = presets.by_name("four-socket")
        ic = Interconnect(topo)
        if ic._cfn is None:
            pytest.skip("C solver unavailable (no compiler?)")
        rng = np.random.default_rng(7)
        for _ in range(200):
            n = int(rng.integers(1, 40))
            sockets = [int(s) for s in rng.integers(0, topo.n_sockets, n)]
            nodes = [int(x) for x in rng.integers(0, topo.n_nodes, n)]
            raw = rng.integers(0, 6, n)
            relabel: dict[int, int] = {}
            canon = [relabel.setdefault(int(g), len(relabel)) for g in raw]
            c = ic._solve_c(sockets, nodes, canon)
            py = ic._solve(sockets, nodes, canon)
            assert c is not None
            assert np.array_equal(c, py), (sockets, nodes, canon)


class TestUnboundCounter:
    """The incremental unbound-page counter equals a full recount after
    any interleaving of touch / bind / interleave operations."""

    def test_counter_matches_recount(self):
        rng = np.random.default_rng(11)
        mm = MemoryManager(4)
        page = mm.page_size
        sizes = {k: int(rng.integers(1, 40)) * page // 2 for k in range(8)}
        for key, size in sizes.items():
            mm.register(key, size)
        for _ in range(300):
            key = int(rng.integers(0, 8))
            size = sizes[key]
            offset = int(rng.integers(0, size))
            length = int(rng.integers(1, size - offset + 1))
            op = rng.integers(0, 3)
            if op == 0:
                mm.touch(key, int(rng.integers(0, 4)), offset, length)
            elif op == 1:
                mm.bind(key, int(rng.integers(0, 4)), offset, length)
            else:
                mm.interleave(key)
            unbound = mm._unbound.get(key, 0)
            recount = int((mm._pages[key] == UNBOUND).sum())
            assert unbound == recount, (key, op)
