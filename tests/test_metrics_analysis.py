"""Unit tests for post-mortem schedule analysis and the ASCII figure."""

import numpy as np
import pytest

from repro.machine import two_socket
from repro.metrics import (
    SpeedupCell,
    SpeedupTable,
    idle_gaps_per_socket,
    node_pressure,
    phase_profile,
    render_figure,
    schedule_report,
    schedule_efficiency,
    utilization_timeline,
)
from repro.runtime import TaskProgram, simulate
from repro.schedulers import make_scheduler

from conftest import make_fan_program


@pytest.fixture(scope="module")
def run():
    topo = two_socket(cores_per_socket=2)
    prog = make_fan_program(width=8)
    res = simulate(prog, topo, make_scheduler("las"), seed=0)
    return topo, prog, res


class TestTimeline:
    def test_timeline_shape_and_bounds(self, run):
        topo, prog, res = run
        times, busy = utilization_timeline(res, n_points=64)
        assert len(times) == len(busy) == 64
        assert busy.max() <= topo.n_cores
        assert busy.min() >= 0
        assert busy[0] > 0  # work starts immediately

    def test_timeline_empty(self):
        topo = two_socket()
        res = simulate(TaskProgram().finalize(), topo, make_scheduler("random"))
        times, busy = utilization_timeline(res)
        assert len(times) == 0


class TestEfficiency:
    def test_bounds_hold(self, run):
        topo, prog, res = run
        eff = schedule_efficiency(prog, res, topo.n_cores)
        assert 0.0 < eff.core_utilization <= 1.0
        assert 0.0 < eff.critical_path_bound <= 1.0 + 1e-9
        assert 0.0 < eff.throughput_bound <= 1.0 + 1e-9
        assert eff.dominant_limit in ("critical-path", "throughput")

    def test_serial_program_is_cp_limited(self):
        topo = two_socket(cores_per_socket=2)
        p = TaskProgram()
        a = p.data("a", 4096)
        p.task(outs=[a], work=1.0)
        for _ in range(9):
            p.task(inouts=[a], work=1.0)
        res = simulate(p.finalize(), topo, make_scheduler("las"), seed=0,
                       duration_jitter=0.0)
        eff = schedule_efficiency(p, res, topo.n_cores)
        assert eff.dominant_limit == "critical-path"
        assert eff.critical_path_bound > 0.9


class TestPressureAndPhases:
    def test_node_pressure_sums_to_one(self, run):
        _, _, res = run
        pressure = node_pressure(res)
        assert pressure.sum() == pytest.approx(1.0)

    def test_phase_profile_groups_by_prefix(self, run):
        _, _, res = run
        profile = phase_profile(res)
        assert "prod" in profile and "cons" in profile and "join" in profile
        assert profile["prod"]["count"] == 8

    def test_idle_gaps_nonnegative(self, run):
        topo, _, res = run
        gaps = idle_gaps_per_socket(res, topo.n_sockets, topo.cores_per_socket)
        assert np.all(gaps >= 0)

    def test_report_renders(self, run):
        topo, prog, res = run
        text = schedule_report(prog, res, topo)
        assert "core utilization" in text
        assert "phases:" in text


class TestAsciiFigure:
    def make_table(self):
        t = SpeedupTable(baseline="las", policies=["dfifo", "rgp+las", "ep"])
        for app, vals in (
            ("jacobi", (0.42, 1.2, 1.25)),
            ("nstream", (0.49, 1.74, 1.75)),
        ):
            for pol, v in zip(t.policies, vals):
                t.add(app, pol, SpeedupCell(v, 0.0, 1.0, 0.1))
        return t

    def test_out_of_band_annotated(self):
        text = render_figure(self.make_table())
        assert "*" in text  # clipped markers
        assert "1.75" in text and "0.42" in text

    def test_structure(self):
        text = render_figure(self.make_table())
        assert "jacobi:" in text and "nstream:" in text
        assert "geomean:" in text
        assert text.count("[") == text.count("]")

    def test_baseline_marker_present(self):
        assert "|" in render_figure(self.make_table())
