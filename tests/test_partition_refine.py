"""Unit tests for FM bisection refinement and greedy k-way refinement."""

import numpy as np
import pytest

from repro.graph import CSRGraph, grid_graph
from repro.partition import (
    edge_cut,
    fm_bisection_refine,
    greedy_kway_refine,
    imbalance,
    mapping_cost,
)


def grid_csr(n=8):
    return CSRGraph.from_tdg(grid_graph(n, n))


class TestFMBisection:
    def test_improves_random_start(self):
        g = grid_csr(8)
        rng = np.random.default_rng(0)
        parts = rng.integers(0, 2, g.n_vertices)
        # rebalance the random start roughly
        before = edge_cut(g, parts)
        refined = fm_bisection_refine(g, parts, 0.5, 0.05)
        after = edge_cut(g, refined)
        assert after < before

    def test_does_not_break_balance(self):
        g = grid_csr(8)
        rng = np.random.default_rng(1)
        parts = (np.arange(g.n_vertices) % 2).astype(np.int64)
        refined = fm_bisection_refine(g, parts, 0.5, 0.05)
        assert imbalance(g, refined, 2) <= 0.05 + 1e-9

    def test_restores_broken_balance(self):
        g = grid_csr(8)
        parts = np.zeros(g.n_vertices, dtype=np.int64)  # everything on side 0
        refined = fm_bisection_refine(g, parts, 0.5, 0.05)
        assert imbalance(g, refined, 2) <= 0.05 + 1e-9

    def test_optimal_partition_untouched(self):
        # Two 4x4 grids joined by one edge: the single-edge cut is optimal.
        left = grid_graph(4, 4)
        edges = [(u, v, w) for u, v, w in left.edges()]
        offset = 16
        right = [(u + offset, v + offset, w) for u, v, w in left.edges()]
        bridge = [(15, 16, 0.5)]
        g = CSRGraph.from_edges(32, edges + right + bridge)
        parts = np.array([0] * 16 + [1] * 16)
        refined = fm_bisection_refine(g, parts, 0.5, 0.05)
        assert edge_cut(g, refined) == pytest.approx(0.5)

    def test_unbalanced_fraction(self):
        g = grid_csr(6)
        rng = np.random.default_rng(2)
        parts = rng.integers(0, 2, g.n_vertices)
        refined = fm_bisection_refine(g, parts, 0.25, 0.05)
        w0 = g.vwgt[refined == 0].sum()
        assert w0 <= 0.25 * g.vwgt.sum() * 1.05 + g.vwgt.max()

    def test_empty_graph(self):
        g = CSRGraph.from_edges(0, [])
        out = fm_bisection_refine(g, np.zeros(0, dtype=np.int64), 0.5, 0.05)
        assert len(out) == 0

    def test_bad_fraction_rejected(self):
        g = grid_csr(4)
        from repro.errors import PartitionError

        with pytest.raises(PartitionError):
            fm_bisection_refine(g, np.zeros(16, dtype=np.int64), 0.0, 0.05)


class TestGreedyKWay:
    def test_reduces_cut(self):
        g = grid_csr(8)
        rng = np.random.default_rng(3)
        parts = rng.integers(0, 4, g.n_vertices)
        refined = greedy_kway_refine(g, parts, 4)
        assert edge_cut(g, refined) < edge_cut(g, parts)

    def test_respects_balance(self):
        g = grid_csr(8)
        rng = np.random.default_rng(4)
        parts = rng.integers(0, 4, g.n_vertices)
        refined = greedy_kway_refine(g, parts, 4, tolerance=0.05)
        assert imbalance(g, refined, 4) <= max(
            imbalance(g, parts, 4), 0.05 + 1e-9
        )

    def test_arch_aware_reduces_mapping_cost(self):
        from repro.machine import bullion_s16

        topo = bullion_s16()
        g = grid_csr(8)
        rng = np.random.default_rng(5)
        parts = rng.integers(0, 8, g.n_vertices)
        refined = greedy_kway_refine(
            g, parts, 8, arch_distance=topo.distance
        )
        assert mapping_cost(g, refined, topo.distance) < mapping_cost(
            g, parts, topo.distance
        )

    def test_k1_noop(self):
        g = grid_csr(4)
        parts = np.zeros(g.n_vertices, dtype=np.int64)
        assert np.array_equal(greedy_kway_refine(g, parts, 1), parts)

    def test_does_not_mutate_input(self):
        g = grid_csr(4)
        rng = np.random.default_rng(6)
        parts = rng.integers(0, 2, g.n_vertices)
        snapshot = parts.copy()
        greedy_kway_refine(g, parts, 2)
        assert np.array_equal(parts, snapshot)
