"""Unit tests for heavy-edge matching coarsening."""

import numpy as np
import pytest

from repro.graph import CSRGraph, chain, grid_graph
from repro.partition import coarsen_once, coarsen_to, heavy_edge_matching


def csr_of(tdg):
    return CSRGraph.from_tdg(tdg)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMatching:
    def test_matching_is_symmetric(self, rng):
        g = csr_of(grid_graph(6, 6))
        match = heavy_edge_matching(g, rng)
        for v in range(g.n_vertices):
            assert match[match[v]] == v

    def test_heavy_edge_preferred(self, rng):
        # Path 0 -1- 1 -100- 2: vertex 1 must match its heavy neighbour 2
        # whenever 1 is visited before its neighbours are taken.
        # Unless vertex 0 is visited first (prob 1/3) and grabs vertex 1,
        # the heavy 1-2 edge is always matched.
        g = CSRGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 100.0)])
        heavy_pairs = 0
        for seed in range(40):
            match = heavy_edge_matching(g, np.random.default_rng(seed))
            if match[1] == 2:
                heavy_pairs += 1
        assert heavy_pairs >= 20  # expectation is ~27 of 40

    def test_singletons_allowed(self, rng):
        g = CSRGraph.from_edges(3, [])  # no edges: everyone self-matched
        match = heavy_edge_matching(g, rng)
        assert list(match) == [0, 1, 2]


class TestCoarsenOnce:
    def test_shrinks_chain(self, rng):
        # Random-order matching on a path leaves some singletons, so the
        # coarse graph has between n/2 (perfect) and ~0.75n vertices.
        g = csr_of(chain(16))
        level = coarsen_once(g, rng)
        assert level is not None
        assert 8 <= level.graph.n_vertices <= 12

    def test_weight_conservation(self, rng):
        g = csr_of(grid_graph(5, 5))
        level = coarsen_once(g, rng)
        assert level.graph.vwgt.sum() == pytest.approx(g.vwgt.sum())

    def test_edge_weight_conservation_minus_internal(self, rng):
        g = csr_of(chain(8, edge_bytes=2.0))
        level = coarsen_once(g, rng)
        internal = g.adjwgt.sum() / 2 - level.graph.adjwgt.sum() / 2
        assert internal > 0  # matched pairs hide their edge

    def test_map_is_dense(self, rng):
        g = csr_of(grid_graph(4, 4))
        level = coarsen_once(g, rng)
        n_coarse = level.graph.n_vertices
        assert set(level.fine_to_coarse) == set(range(n_coarse))

    def test_no_progress_returns_none(self, rng):
        g = CSRGraph.from_edges(3, [])  # isolated vertices cannot match
        assert coarsen_once(g, rng) is None


class TestCoarsenTo:
    def test_respects_target(self, rng):
        g = csr_of(grid_graph(12, 12))
        levels = coarsen_to(g, max_vertices=20, rng=rng)
        assert levels
        assert levels[-1].graph.n_vertices <= max(20, 144 * 0.95)
        assert levels[-1].graph.n_vertices < 144

    def test_already_small(self, rng):
        g = csr_of(chain(4))
        assert coarsen_to(g, max_vertices=10, rng=rng) == []

    def test_total_weight_invariant_through_hierarchy(self, rng):
        g = csr_of(grid_graph(10, 10))
        for level in coarsen_to(g, max_vertices=10, rng=rng):
            assert level.graph.vwgt.sum() == pytest.approx(100.0)
