"""Tests for the hot-path benchmark harness and its JSON schema."""

import json
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_SCHEMA_KEYS,
    bench_decision_rate,
    bench_end_to_end,
    build_bench_program,
    check_cache_equivalence,
    headline_speedup,
    run_hotpath_bench,
    validate_entries,
    write_entries,
)
from repro.cli import main
from repro.errors import BenchmarkError
from repro.machine import presets


def good_entry(**over):
    entry = {
        "name": "decision/test-10/cached",
        "n_tasks": 10,
        "policy": "las",
        "wall_s": 0.5,
        "decisions_per_s": 20.0,
    }
    entry.update(over)
    return entry


class TestSchema:
    def test_valid_entries_pass(self):
        validate_entries([good_entry(), good_entry(extra="ok")])

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError, match="non-empty"):
            validate_entries([])
        with pytest.raises(BenchmarkError):
            validate_entries("not a list")

    @pytest.mark.parametrize("key", sorted(BENCH_SCHEMA_KEYS))
    def test_missing_key_rejected(self, key):
        entry = good_entry()
        del entry[key]
        with pytest.raises(BenchmarkError, match="missing key"):
            validate_entries([entry])

    def test_wrong_types_rejected(self):
        with pytest.raises(BenchmarkError, match="must be"):
            validate_entries([good_entry(n_tasks="ten")])
        with pytest.raises(BenchmarkError, match="must be"):
            validate_entries([good_entry(wall_s="fast")])
        # booleans are ints in Python but not in the schema
        with pytest.raises(BenchmarkError, match="must be"):
            validate_entries([good_entry(n_tasks=True)])

    def test_negative_measurements_rejected(self):
        with pytest.raises(BenchmarkError, match="negative"):
            validate_entries([good_entry(wall_s=-1.0)])
        with pytest.raises(BenchmarkError, match="no tasks"):
            validate_entries([good_entry(n_tasks=0)])

    def test_write_entries_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_hotpath.json"
        write_entries([good_entry()], path)
        assert json.loads(path.read_text()) == [good_entry()]

    def test_write_refuses_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        with pytest.raises(BenchmarkError):
            write_entries([good_entry(policy=7)], path)
        assert not path.exists()


class TestHarness:
    def test_build_bench_program_meets_floor(self):
        program = build_bench_program(100, 4)
        assert program.n_tasks >= 100
        with pytest.raises(BenchmarkError):
            build_bench_program(1, 4)

    def test_decision_rate_entries(self):
        topo = presets.by_name("two-socket")
        program = build_bench_program(50, topo.n_sockets)
        for cache in (False, True):
            entry = bench_decision_rate(program, topo, cache=cache, reps=1)
            validate_entries([entry])
            assert entry["policy"] == "las"
            assert entry["decisions_per_s"] > 0

    def test_end_to_end_entry(self):
        topo = presets.by_name("two-socket")
        program = build_bench_program(30, topo.n_sockets)
        entry = bench_end_to_end(program, topo, "las", cache=True)
        validate_entries([entry])
        assert entry["policy"] == "las"
        assert entry["wall_s"] > 0

    def test_equivalence_check_passes_on_real_cache(self):
        topo = presets.by_name("two-socket")
        program = build_bench_program(30, topo.n_sockets)
        check_cache_equivalence(program, topo, "las")
        check_cache_equivalence(program, topo, "rgp+las")

    def test_run_hotpath_bench_tiny(self):
        entries = run_hotpath_bench(sizes=(30, 60), machine="two-socket",
                                    reps=1)
        validate_entries(entries)
        names = [e["name"] for e in entries]
        assert any(n.startswith("decision/") and n.endswith("/cached")
                   for n in names)
        assert any(n.startswith("e2e/") for n in names)
        # e2e skips the largest size; decision covers both sizes.
        assert sum(n.startswith("decision/") for n in names) == 4
        speedup = headline_speedup(entries)
        assert speedup is not None and speedup > 0

    def test_headline_speedup_uses_largest_size(self):
        entries = [
            good_entry(name="decision/x-10/uncached", n_tasks=10,
                       decisions_per_s=100.0),
            good_entry(name="decision/x-10/cached", n_tasks=10,
                       decisions_per_s=500.0),
            good_entry(name="decision/x-99/uncached", n_tasks=99,
                       decisions_per_s=100.0),
            good_entry(name="decision/x-99/cached", n_tasks=99,
                       decisions_per_s=300.0),
            good_entry(name="e2e/x-10/las/cached", n_tasks=10),
        ]
        assert headline_speedup(entries) == pytest.approx(3.0)

    def test_headline_speedup_none_without_pairs(self):
        assert headline_speedup([good_entry(name="e2e/x/las/cached")]) is None


class TestBenchCLI:
    def test_bench_quick_writes_schema_valid_file(self, tmp_path, capsys):
        out = tmp_path / "BENCH_hotpath.json"
        # The perf history defaults to living NEXT TO --out — a scratch-dir
        # bench must never append to a BENCH_history.jsonl in the cwd.
        cwd_history = Path("BENCH_history.jsonl")
        before = cwd_history.read_bytes() if cwd_history.exists() else None
        assert main(["bench", "--sizes", "30", "60", "--reps", "1",
                     "--machine", "two-socket", "--out", str(out)]) == 0
        entries = json.loads(out.read_text())
        validate_entries(entries)
        assert "speedup" in capsys.readouterr().out
        assert (tmp_path / "BENCH_history.jsonl").exists()
        after = cwd_history.read_bytes() if cwd_history.exists() else None
        assert before == after

    def test_bench_validate_mode(self, tmp_path, capsys):
        out = tmp_path / "BENCH_hotpath.json"
        write_entries([good_entry()], out)
        assert main(["bench", "--validate", str(out)]) == 0
        assert "schema OK" in capsys.readouterr().out

    def test_bench_validate_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"name": "x"}]))
        assert main(["bench", "--validate", str(bad)]) != 0

    def test_bench_validate_clean_error_on_unreadable_file(self, tmp_path,
                                                           capsys):
        """Missing or malformed files follow the CLI's `error: ...`
        contract (exit 6, EXIT_BENCHMARK) instead of raising a
        traceback."""
        assert main(["bench", "--validate", str(tmp_path / "nope.json")]) == 6
        assert "error:" in capsys.readouterr().err
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        assert main(["bench", "--validate", str(garbled)]) == 6
        assert "error:" in capsys.readouterr().err


class TestDeterministicStructure:
    """Wall-clock fields are host noise; everything else must be pinned.

    The bench smoke is only allowed to assert *structure and ranges* of
    timing fields — never exact values — while all schedule-derived
    fields must be reproducible run-to-run under a pinned seed.  This
    guards against a future assertion accidentally coupling CI to host
    speed.
    """

    def test_same_seed_same_structure(self):
        topo = presets.by_name("two-socket")
        program = build_bench_program(40, topo.n_sockets)
        a = bench_decision_rate(program, topo, cache=True, reps=1)
        b = bench_decision_rate(program, topo, cache=True, reps=1)
        # Identical identity/shape; timings only range-checked.
        for key in ("name", "n_tasks", "policy"):
            assert a[key] == b[key]
        for entry in (a, b):
            assert entry["decisions_per_s"] > 0
            assert entry["wall_s"] >= 0

    def test_timing_fields_are_finite(self):
        import math

        topo = presets.by_name("two-socket")
        program = build_bench_program(30, topo.n_sockets)
        entry = bench_end_to_end(program, topo, "las", cache=True)
        assert math.isfinite(entry["wall_s"])
