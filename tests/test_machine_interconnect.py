"""Unit tests for the interconnect bandwidth model (max-min fair rates)."""

import numpy as np
import pytest

from repro.machine import Interconnect, StreamKey, bullion_s16, two_socket
from repro.machine.interconnect import _waterfill


def rates_of(ic, specs):
    """specs: list of (socket, node, group)."""
    return ic.stream_rates([StreamKey(s, n, g) for s, n, g in specs])


class TestWaterfill:
    def test_under_budget_runs_at_caps(self):
        caps = np.array([10.0, 20.0])
        assert list(_waterfill(caps, 100.0)) == [10.0, 20.0]

    def test_over_budget_equal_split(self):
        caps = np.array([100.0, 100.0])
        assert list(_waterfill(caps, 50.0)) == [25.0, 25.0]

    def test_slack_redistributed(self):
        caps = np.array([5.0, 100.0])
        r = _waterfill(caps, 50.0)
        assert r[0] == 5.0
        assert r[1] == pytest.approx(45.0)

    def test_total_never_exceeds_budget(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            caps = rng.uniform(0.1, 10.0, size=8)
            budget = rng.uniform(1.0, 20.0)
            r = _waterfill(caps, budget)
            assert r.sum() <= min(budget, caps.sum()) + 1e-9
            assert np.all(r <= caps + 1e-12)


class TestSingleStream:
    def test_local_stream_core_capped(self):
        topo = two_socket()
        ic = Interconnect(topo, core_fraction=0.35)
        (r,) = rates_of(ic, [(0, 0, 0)])
        assert r == pytest.approx(0.35 * topo.node_bandwidth[0])

    def test_local_stream_uncapped_without_core_limit(self):
        topo = two_socket()
        ic = Interconnect(topo, core_fraction=None)
        (r,) = rates_of(ic, [(0, 0, 0)])
        assert r == pytest.approx(topo.node_bandwidth[0])

    def test_remote_slower_than_local_when_binding(self):
        topo = bullion_s16()
        ic = Interconnect(topo, core_fraction=None, link_fraction=None)
        (local,) = rates_of(ic, [(0, 0, 0)])
        (far,) = rates_of(ic, [(0, 7, 0)])
        assert far < local
        assert far == pytest.approx(local * topo.bandwidth_factor(0, 7))

    def test_remote_penalty_exponent(self):
        topo = bullion_s16()
        ic1 = Interconnect(topo, remote_penalty_exp=1.0, core_fraction=None,
                           link_fraction=None)
        ic2 = Interconnect(topo, remote_penalty_exp=2.0, core_fraction=None,
                           link_fraction=None)
        (r1,) = rates_of(ic1, [(0, 7, 0)])
        (r2,) = rates_of(ic2, [(0, 7, 0)])
        assert r2 < r1


class TestContention:
    def test_node_budget_shared(self):
        topo = two_socket()
        ic = Interconnect(topo, core_fraction=None, link_fraction=None)
        rates = rates_of(ic, [(0, 0, 0), (0, 0, 1), (0, 0, 2)])
        assert rates.sum() == pytest.approx(topo.node_bandwidth[0])
        assert np.allclose(rates, rates[0])  # symmetric streams share equally

    def test_remote_cannot_starve_local(self):
        topo = bullion_s16()
        ic = Interconnect(topo, core_fraction=None, link_fraction=0.45)
        # Seven far remote readers + one local on node 0.
        specs = [(s, 0, s) for s in range(1, 8)] + [(0, 0, 0)]
        rates = rates_of(ic, specs)
        local = rates[-1]
        assert local >= max(rates[:-1]) - 1e-9

    def test_link_caps_aggregate_remote(self):
        topo = bullion_s16()
        ic = Interconnect(topo, core_fraction=None, link_fraction=0.45)
        # Socket 0 reading from every other node: its link bounds the sum.
        specs = [(0, n, n) for n in range(1, 8)]
        rates = rates_of(ic, specs)
        link = 0.45 * topo.node_bandwidth[0]
        assert rates.sum() <= link + 1e-6

    def test_core_budget_shared_within_task(self):
        topo = two_socket()
        ic = Interconnect(topo, core_fraction=0.4, link_fraction=None)
        # One task (group 7) reading from both nodes.
        rates = rates_of(ic, [(0, 0, 7), (0, 1, 7)])
        assert rates.sum() <= 0.4 * topo.node_bandwidth[0] + 1e-6

    def test_distinct_tasks_not_core_coupled(self):
        topo = two_socket()
        ic = Interconnect(topo, core_fraction=0.4, link_fraction=None)
        rates = rates_of(ic, [(0, 0, 1), (0, 0, 2)])
        assert rates.sum() == pytest.approx(0.8 * topo.node_bandwidth[0])

    def test_empty_stream_list(self):
        ic = Interconnect(two_socket())
        assert len(ic.stream_rates([])) == 0

    def test_all_rates_positive(self):
        topo = bullion_s16()
        ic = Interconnect(topo)
        rng = np.random.default_rng(3)
        specs = [
            (int(rng.integers(8)), int(rng.integers(8)), g) for g in range(64)
        ]
        rates = rates_of(ic, specs)
        assert np.all(rates > 0)

    def test_node_budgets_never_exceeded(self):
        topo = bullion_s16()
        ic = Interconnect(topo)
        rng = np.random.default_rng(7)
        for trial in range(20):
            specs = [
                (int(rng.integers(8)), int(rng.integers(8)), g)
                for g in range(int(rng.integers(1, 40)))
            ]
            rates = rates_of(ic, specs)
            per_node = np.zeros(8)
            for (s, node, g), r in zip(specs, rates):
                per_node[node] += r
            assert np.all(per_node <= topo.node_bandwidth + 1e-6)


class TestAuxiliary:
    def test_best_case_time_prefers_local(self):
        topo = bullion_s16()
        ic = Interconnect(topo, core_fraction=None, link_fraction=None)
        local = ic.best_case_time(0, np.array([1e6, 0, 0, 0, 0, 0, 0, 0]))
        remote = ic.best_case_time(7, np.array([1e6, 0, 0, 0, 0, 0, 0, 0]))
        assert local < remote

    def test_access_latency_zero_by_default(self):
        ic = Interconnect(two_socket())
        assert ic.access_latency(0, 1) == 0.0

    def test_access_latency_scales_with_distance(self):
        topo = bullion_s16()
        ic = Interconnect(topo, latency_cost_per_access=1.0)
        assert ic.access_latency(0, 0) == pytest.approx(1.0)
        assert ic.access_latency(0, 7) == pytest.approx(2.2)

    def test_bad_link_fraction(self):
        with pytest.raises(ValueError):
            Interconnect(two_socket(), link_fraction=-1.0)

    def test_bad_core_fraction(self):
        with pytest.raises(ValueError):
            Interconnect(two_socket(), core_fraction=0.0)

    def test_efficiency_matrix(self):
        topo = bullion_s16()
        ic = Interconnect(topo)
        assert ic.efficiency(0, 0) == pytest.approx(1.0)
        assert ic.efficiency(0, 1) == pytest.approx(10.0 / 16.0)
