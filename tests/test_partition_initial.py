"""Unit tests for initial bisection (greedy graph growing, random)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import CSRGraph, grid_graph, independent_chains
from repro.partition import edge_cut, greedy_graph_growing, random_bisection


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestRandomBisection:
    def test_hits_target_fraction(self, rng):
        g = CSRGraph.from_tdg(grid_graph(8, 8))
        parts = random_bisection(g, 0.5, rng)
        w0 = g.vwgt[parts == 0].sum()
        assert abs(w0 - 32.0) <= g.vwgt.max()

    def test_skewed_fraction(self, rng):
        g = CSRGraph.from_tdg(grid_graph(10, 10))
        parts = random_bisection(g, 0.2, rng)
        w0 = g.vwgt[parts == 0].sum()
        assert abs(w0 - 20.0) <= g.vwgt.max()

    def test_bad_fraction(self, rng):
        g = CSRGraph.from_tdg(grid_graph(2, 2))
        with pytest.raises(PartitionError):
            random_bisection(g, 1.0, rng)


class TestGreedyGraphGrowing:
    def test_better_than_random(self, rng):
        g = CSRGraph.from_tdg(grid_graph(12, 12))
        cut_ggg = np.mean([
            edge_cut(g, greedy_graph_growing(g, 0.5, np.random.default_rng(s)))
            for s in range(5)
        ])
        cut_rand = np.mean([
            edge_cut(g, random_bisection(g, 0.5, np.random.default_rng(s)))
            for s in range(5)
        ])
        assert cut_ggg < cut_rand / 2

    def test_balanced(self, rng):
        g = CSRGraph.from_tdg(grid_graph(10, 10))
        parts = greedy_graph_growing(g, 0.5, rng)
        w0 = g.vwgt[parts == 0].sum()
        assert abs(w0 - 50.0) <= g.vwgt.max() + 1

    def test_disconnected_graph_reseeds(self, rng):
        g = CSRGraph.from_tdg(independent_chains(8, 4))
        parts = greedy_graph_growing(g, 0.5, rng)
        assert set(parts) == {0, 1}
        w0 = g.vwgt[parts == 0].sum()
        assert abs(w0 - 16.0) <= g.vwgt.max()

    def test_zero_cut_on_two_components(self, rng):
        g = CSRGraph.from_tdg(independent_chains(2, 10))
        parts = greedy_graph_growing(g, 0.5, rng, n_trials=8)
        assert edge_cut(g, parts) == 0.0

    def test_empty_graph(self, rng):
        g = CSRGraph.from_edges(0, [])
        assert len(greedy_graph_growing(g, 0.5, rng)) == 0
