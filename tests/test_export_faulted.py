"""Exporters under faulted runs + the new trace/metrics surfaces (PR 7).

Satellite coverage: every exporter must stay schema-valid and
time-monotonic when the run crashed tasks, re-executed them, or
quarantined cores; plus the dependence flow arrows, the critical-path
track, and the Prometheus quantile summaries.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import make_app
from repro.experiments.config import ExperimentConfig
from repro.faults import CoreFault, FaultPlan, TaskCrash
from repro.machine import two_socket
from repro.machine.interconnect import Interconnect
from repro.observability import Instrumentation, RingBufferSink
from repro.observability.export import (
    chrome_trace,
    metrics_document,
    paraver_timeline,
    render_prometheus,
)
from repro.observability.metrics import MetricsRegistry
from repro.profiling import profile_run
from repro.runtime.simulator import Simulator
from repro.schedulers import make_scheduler


@pytest.fixture(scope="module")
def faulted():
    """A run with crashes, re-executions and a dead (quarantined) core."""
    cfg = ExperimentConfig.quick()
    topo = two_socket(cores_per_socket=2)
    program = make_app(
        "jacobi", **cfg.app_params.get("jacobi", {})
    ).build(topo.n_sockets)
    plan = FaultPlan(
        core_faults=(CoreFault(core=1, at=2.0),),
        task_crashes=(TaskCrash(probability=0.05),),
    )
    obs = Instrumentation(sink=RingBufferSink(1 << 20))
    sim = Simulator(
        program, topo, make_scheduler("las"),
        interconnect=Interconnect(topo), seed=3, steal=cfg.steal,
        faults=plan, instrument=obs, max_retries=5,
    )
    result = sim.run()
    assert result.crashed_records, "fixture must actually crash attempts"
    return program, result, topo


def test_chrome_trace_faulted_schema_and_monotonic(faulted):
    program, result, _ = faulted
    doc = chrome_trace(result, tdg=program.tdg)
    json.dumps(doc)  # JSON-serializable end to end
    events = doc["traceEvents"]
    body = [e for e in events if e["ph"] != "M"]
    # Time-ordered body, non-negative timestamps and durations.
    ts = [e["ts"] for e in body]
    assert ts == sorted(ts)
    assert all(e["ts"] >= 0 for e in body)
    assert all(e.get("dur", 0) >= 0 for e in body)
    # Crashed attempts are visible as crash-category slices.
    crashes = [e for e in body if e.get("cat") == "crash"]
    assert len(crashes) == len(result.crashed_records)
    assert all("[crashed]" in e["name"] for e in crashes)
    # Every event carries the required Trace Event Format fields.
    for event in body:
        assert {"name", "ph", "ts", "pid"} <= set(event)


def test_flow_events_pair_and_respect_causality(faulted):
    program, result, _ = faulted
    doc = chrome_trace(result, tdg=program.tdg)
    flows = [e for e in doc["traceEvents"] if e.get("cat") == "dep"]
    assert flows, "dependence edges must produce flow events"
    starts = {e["id"]: e for e in flows if e["ph"] == "s"}
    finishes = {e["id"]: e for e in flows if e["ph"] == "f"}
    assert set(starts) == set(finishes)  # every arrow has both ends
    assert all(e.get("bp") == "e" for e in finishes.values())
    rec_by_tid = {r.tid: r for r in result.records}
    for fid, start in starts.items():
        finish = finishes[fid]
        # Arrow flies forward in time: producer finish <= consumer start.
        assert start["ts"] <= finish["ts"] + 1e-6
        src, dst = start["args"]["src"], start["args"]["dst"]
        assert start["ts"] == pytest.approx(rec_by_tid[src].finish * 1e6)
        assert finish["ts"] == pytest.approx(rec_by_tid[dst].start * 1e6)


def test_flow_events_only_for_completed_endpoints(faulted):
    program, result, _ = faulted
    doc = chrome_trace(result, tdg=program.tdg)
    flows = [e for e in doc["traceEvents"] if e.get("cat") == "dep"]
    completed = {r.tid for r in result.records}
    for event in flows:
        assert event["args"]["src"] in completed
        assert event["args"]["dst"] in completed


def test_no_flow_events_without_tdg(faulted):
    _, result, _ = faulted
    doc = chrome_trace(result)
    assert not [e for e in doc["traceEvents"] if e.get("cat") == "dep"]


def test_critical_path_track_tiles_makespan(faulted):
    program, result, topo = faulted
    report = profile_run(program, result, topo)
    doc = chrome_trace(result, critical_path=report)
    track = [
        e for e in doc["traceEvents"] if e.get("cat") == "critical_path"
    ]
    assert len(track) == len(report.segments)
    track.sort(key=lambda e: e["ts"])
    cursor = 0.0
    for event in track:
        assert event["ts"] == pytest.approx(cursor, abs=1.0)
        cursor = event["ts"] + event["dur"]
    assert cursor == pytest.approx(result.makespan * 1e6, abs=1.0)
    # The track lives on its own named process above the sockets.
    pids = {e["pid"] for e in track}
    assert len(pids) == 1
    names = [
        e for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
        and e["pid"] in pids
    ]
    assert names and names[0]["args"]["name"] == "critical path"


def test_paraver_faulted_monotonic_and_parsable(faulted):
    _, result, _ = faulted
    text = paraver_timeline(result)
    lines = [l for l in text.splitlines() if l and not l.startswith("#")]
    assert lines
    times = []
    for line in lines:
        fields = line.split(":")
        assert fields[0] in ("1", "2")
        # state records carry begin:end; event records a single time
        if fields[0] == "1":
            begin, end = int(fields[5]), int(fields[6])
            assert 0 <= begin <= end
            times.append(begin)
        else:
            times.append(int(fields[5]))
    assert times == sorted(times)


def test_metrics_document_faulted_json_safe(faulted):
    _, result, _ = faulted
    doc = metrics_document(result)
    json.dumps(doc)
    assert doc["makespan"] == result.makespan
    assert doc["registry"]  # instrumented run: registry not empty
    counters = doc["registry"]["counters"]
    assert counters["tasks.crashed"] == len(result.crashed_records)


def test_export_deterministic_under_faults(faulted):
    program, result, topo = faulted
    report = profile_run(program, result, topo)
    doc1 = chrome_trace(result, tdg=program.tdg, critical_path=report)
    doc2 = chrome_trace(result, tdg=program.tdg, critical_path=report)
    assert json.dumps(doc1, sort_keys=True) == json.dumps(doc2,
                                                          sort_keys=True)


# ---------------------------------------------------------------------------
# Prometheus quantile summaries (satellite: histogram exposition).


def test_prometheus_histogram_summary_lines():
    registry = MetricsRegistry()
    hist = registry.histogram("svc.latency", bounds=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        hist.observe(value)
    text = render_prometheus(registry)
    assert "# TYPE svc_latency histogram" in text
    assert 'svc_latency_bucket{le="0.1"} 1' in text
    assert 'svc_latency_bucket{le="+Inf"} 4' in text
    assert "# TYPE svc_latency_summary summary" in text
    assert 'svc_latency_summary{quantile="0.5"} 1' in text
    assert 'svc_latency_summary{quantile="0.99"} 10' in text
    assert "svc_latency_summary_count 4" in text
    assert "svc_latency_summary_sum 6.05" in text


def test_prometheus_summary_overflow_is_inf():
    registry = MetricsRegistry()
    registry.histogram("over", bounds=(1.0,)).observe(50.0)
    text = render_prometheus(registry)
    assert 'over_summary{quantile="0.99"} +Inf' in text
    # +Inf is the Prometheus exposition spelling; bare "inf" never leaks.
    for line in text.splitlines():
        assert " inf" not in line


def test_prometheus_parse_shape():
    registry = MetricsRegistry()
    registry.counter("jobs.done").inc(3)
    registry.histogram("lat", bounds=(1.0, 2.0)).observe(1.5)
    text = render_prometheus(registry)
    for line in text.strip().splitlines():
        if line.startswith("#"):
            assert line.startswith("# TYPE ")
            continue
        name, _, value = line.rpartition(" ")
        assert name
        float(value.replace("+Inf", "inf"))
