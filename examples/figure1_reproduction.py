#!/usr/bin/env python3
"""Regenerate the paper's Figure 1 and compare against the published values.

This is the headline experiment: speedup over the LAS baseline of DFIFO,
RGP+LAS and EP on eight task-parallel applications, simulated on the
bullion S16 model (8 sockets x 4 cores).

Run:  python examples/figure1_reproduction.py            (full, ~5 min)
      python examples/figure1_reproduction.py --quick    (reduced, ~30 s)
"""

import argparse
import sys
import time

from repro.experiments import ExperimentConfig, run_figure1
from repro.experiments.figure1 import PAPER_FIGURE1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seeds", type=int, default=3)
    args = parser.parse_args(argv)

    cfg = (ExperimentConfig.quick if args.quick else ExperimentConfig.paper)(
        seeds=tuple(range(args.seeds))
    )
    t0 = time.time()
    result = run_figure1(cfg, progress=lambda m: print(f"  {m}",
                                                       file=sys.stderr))
    print(f"\n({time.time() - t0:.0f}s)\n")
    print(result.render())

    print("\npaper vs measured (annotated points):")
    for (app, policy), paper_value in sorted(PAPER_FIGURE1.items()):
        if app == "geomean":
            measured = result.table.geomean(policy)
        else:
            measured = result.table.speedup(app, policy)
        print(f"  {app:12s} {policy:8s} paper={paper_value:5.2f} "
              f"measured={measured:5.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
