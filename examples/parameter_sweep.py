#!/usr/bin/env python3
"""Domain example: a custom parameter sweep with CSV output.

Uses the generic sweep harness to answer a question the fixed experiments
do not: *how does the RGP+LAS window size interact with the application's
parallel width?*  Sweeps window sizes across two workloads and writes a
CSV ready for any plotting tool.

Run:  python examples/parameter_sweep.py [out.csv]
"""

import sys

from repro.experiments import (
    ExperimentConfig,
    ParameterGrid,
    run_sweep,
    write_sweep_csv,
)


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "window_sweep.csv"
    cfg = ExperimentConfig.quick(seeds=(0, 1))
    grid = ParameterGrid(
        app=["nstream", "jacobi"],
        policy=["rgp+las"],
        window_size=[8, 32, 128, 512, 2048],
    )
    print(f"running {len(grid)} grid points...\n")
    rows = run_sweep(cfg, grid, progress=lambda m: print(" ", m))

    # Normalise per app to the largest window (the best case).
    print("\nmakespan vs best window (1.00 = large-window RGP+LAS):")
    by_app = {}
    for row in rows:
        by_app.setdefault(row.params["app"], []).append(row)
    for app, app_rows in by_app.items():
        best = min(r.makespan_mean for r in app_rows)
        print(f"  {app}:")
        for r in sorted(app_rows, key=lambda r: r.params["window_size"]):
            w = r.params["window_size"]
            print(f"    window={w:<5d} {r.makespan_mean / best:5.2f}x "
                  f"(remote {r.remote_fraction:.1%})")

    write_sweep_csv(rows, out_path)
    print(f"\nCSV written to {out_path}")


if __name__ == "__main__":
    main()
