#!/usr/bin/env python3
"""Quickstart: build a task program, simulate it under four schedulers.

The 60-second tour of the library:

1. model the paper's machine (an 8-socket Atos bullion S16);
2. write a small task-parallel program through the runtime API
   (``data`` + ``task(ins=..., outs=...)``, dependencies are derived);
3. simulate it under DFIFO, LAS, EP and RGP+LAS;
4. compare makespans and NUMA traffic.

Run:  python examples/quickstart.py
"""

from repro import TaskProgram, bullion_s16, make_scheduler, simulate


def build_program() -> TaskProgram:
    """A toy blocked 'daxpy pipeline': init -> scale -> add per block."""
    prog = TaskProgram("quickstart")
    n_blocks, block_bytes = 24, 256 * 1024
    for b in range(n_blocks):
        x = prog.data(f"x[{b}]", block_bytes)
        y = prog.data(f"y[{b}]", block_bytes)
        # The expert would place block b on socket b*8//n_blocks.
        ep = {"ep_socket": b * 8 // n_blocks}
        prog.task(f"init({b})", outs=[x, y], work=0.02, meta=ep)
        for step in range(6):
            prog.task(f"axpy({b},{step})", ins=[x], inouts=[y], work=0.02,
                      meta=ep)
    return prog.finalize()


def main() -> None:
    topology = bullion_s16()
    program = build_program()
    print(f"program: {program}")
    print(f"machine: {topology.describe()}\n")

    results = {}
    for policy in ("dfifo", "las", "ep", "rgp+las"):
        result = simulate(program, topology, make_scheduler(policy), seed=1)
        results[policy] = result
        print(
            f"{policy:8s}  makespan={result.makespan:9.3f}  "
            f"remote={result.remote_fraction:6.1%}  "
            f"imbalance={result.load_imbalance():.2f}  "
            f"steals={result.steals}"
        )

    las = results["las"].makespan
    print("\nspeedup vs LAS:")
    for policy, result in results.items():
        print(f"  {policy:8s} {las / result.makespan:5.2f}x")


if __name__ == "__main__":
    main()
