#!/usr/bin/env python3
"""Domain example: how NUMA scale changes the scheduling problem.

The paper's motivation (§1): more sockets mean stronger NUMA effects.
This study holds the core count at 32 and sweeps the machine from 1 to 8
sockets, measuring for LAS, RGP+LAS and DFIFO:

* makespan (normalised to the UMA machine),
* remote traffic fraction,
* the RGP+LAS advantage over LAS.

Also demonstrates custom machines (`repro.machine.custom`) and the
synthetic chains workload for a controlled structure.

Run:  python examples/numa_scaling.py
"""

import numpy as np

from repro.apps import SyntheticApp
from repro.machine import Interconnect, custom, single_socket
from repro.runtime import Simulator
from repro.schedulers import make_scheduler

CORES = 32
SEEDS = (0, 1, 2)
POLICIES = ("las", "rgp+las", "dfifo")


def machine(n_sockets: int):
    if n_sockets == 1:
        return single_socket(cores=CORES)
    return custom(n_sockets, CORES // n_sockets, remote=21.0,
                  name=f"{n_sockets}-socket")


def run(topology, policy: str, program) -> tuple[float, float]:
    makespans, remotes = [], []
    for seed in SEEDS:
        sim = Simulator(
            program, topology, make_scheduler(policy),
            interconnect=Interconnect(topology, link_fraction=0.45,
                                      core_fraction=0.30),
            steal="near", seed=seed,
        )
        res = sim.run()
        makespans.append(res.makespan)
        remotes.append(res.remote_fraction)
    return float(np.mean(makespans)), float(np.mean(remotes))


def main() -> None:
    app = SyntheticApp(kind="chains", scale=40, bytes_per_unit=262144,
                       compute_intensity=0.2)
    print("workload: 40 independent chains (synthetic), 32 cores fixed\n")
    header = f"{'sockets':>8} " + "".join(
        f"{p + ' time':>14}{p + ' rem':>10}" for p in POLICIES
    ) + f"{'rgp/las':>10}"
    print(header)
    baseline = None
    for n_sockets in (1, 2, 4, 8):
        topo = machine(n_sockets)
        program = app.build(topo.n_sockets)
        row = f"{n_sockets:>8} "
        times = {}
        for policy in POLICIES:
            mk, rem = run(topo, policy, program)
            times[policy] = mk
            if baseline is None and policy == "las":
                baseline = mk
            row += f"{mk / baseline:>13.2f}x{rem:>9.1%}"
        row += f"{times['las'] / times['rgp+las']:>9.2f}x"
        print(row)
    print(
        "\nReading: times normalised to LAS on the UMA machine; 'rem' is "
        "the remote traffic fraction; the last column is the RGP+LAS "
        "speedup over LAS, which grows with NUMA scale (the paper's §1 "
        "motivation)."
    )


if __name__ == "__main__":
    main()
