#!/usr/bin/env python3
"""Domain example: bring your own application to the RGP scheduler.

Shows the full workflow a library user follows for a *new* task-parallel
code (here: a blocked sparse matrix-vector pipeline with a reduction),
including:

* real numpy payloads + verification that the scheduler never changes
  numerics (the executor replays the simulated order);
* inspecting the TDG the runtime derived;
* partitioning the window by hand with the SCOTCH-style partitioner and
  reading the mapping before running the simulation.

Run:  python examples/custom_application.py
"""

import numpy as np

from repro import (
    TaskProgram,
    bullion_s16,
    execute_in_order,
    make_scheduler,
    simulate,
)
from repro.core import partition_window
from repro.graph import summarize
from repro.partition import DualRecursiveBipartitioner

N_BLOCKS = 16
BLOCK = 512  # rows per block


def build(with_payload: bool) -> tuple[TaskProgram, dict]:
    """y = A x three times, then alpha = <y, y> (blocked, band matrix A)."""
    rng = np.random.default_rng(42)
    ctx = {
        "A": rng.standard_normal((N_BLOCKS * BLOCK, 3)),  # tridiagonal bands
        "x": np.zeros(N_BLOCKS * BLOCK),
        "y": np.zeros(N_BLOCKS * BLOCK),
        "partials": np.zeros(N_BLOCKS),
        "alpha": [0.0],
    }
    prog = TaskProgram("custom-spmv")
    bytes_per_block = BLOCK * 8
    x_objs, y_objs = [], []
    for b in range(N_BLOCKS):
        x_objs.append(prog.data(f"x[{b}]", bytes_per_block))
        y_objs.append(prog.data(f"y[{b}]", bytes_per_block))

    def init_fn(b):
        def fn():
            ctx["x"][b * BLOCK:(b + 1) * BLOCK] = 1.0 / (b + 1)
        return fn

    def spmv_fn(b):
        def fn():
            sl = np.s_[b * BLOCK:(b + 1) * BLOCK]
            x = ctx["x"]
            lo, hi = b * BLOCK, (b + 1) * BLOCK
            main = ctx["A"][sl, 1] * x[sl]
            left = np.zeros(BLOCK)
            left[1:] = ctx["A"][lo + 1:hi, 0] * x[lo:hi - 1]
            if b > 0:
                left[0] = ctx["A"][lo, 0] * x[lo - 1]
            right = np.zeros(BLOCK)
            right[:-1] = ctx["A"][lo:hi - 1, 2] * x[lo + 1:hi]
            if b < N_BLOCKS - 1:
                right[-1] = ctx["A"][hi - 1, 2] * x[hi]
            ctx["y"][sl] = main + left + right
        return fn

    def copy_fn(b):
        def fn():
            sl = np.s_[b * BLOCK:(b + 1) * BLOCK]
            ctx["x"][sl] = ctx["y"][sl]
        return fn

    def dot_fn(b):
        def fn():
            sl = np.s_[b * BLOCK:(b + 1) * BLOCK]
            ctx["partials"][b] = float(np.vdot(ctx["y"][sl], ctx["y"][sl]))
        return fn

    def reduce_fn():
        ctx["alpha"][0] = float(ctx["partials"].sum())

    for b in range(N_BLOCKS):
        prog.task(f"init({b})", outs=[x_objs[b]], work=0.01,
                  fn=init_fn(b) if with_payload else None,
                  meta={"ep_socket": b * 8 // N_BLOCKS})
    for sweep in range(3):
        for b in range(N_BLOCKS):
            ins = [x_objs[b]]
            if b > 0:
                ins.append(x_objs[b - 1])
            if b < N_BLOCKS - 1:
                ins.append(x_objs[b + 1])
            prog.task(f"spmv({sweep},{b})", ins=ins, outs=[y_objs[b]],
                      work=0.03, fn=spmv_fn(b) if with_payload else None,
                      meta={"ep_socket": b * 8 // N_BLOCKS})
        for b in range(N_BLOCKS):
            prog.task(f"copy({sweep},{b})", ins=[y_objs[b]],
                      outs=[x_objs[b]], work=0.01,
                      fn=copy_fn(b) if with_payload else None,
                      meta={"ep_socket": b * 8 // N_BLOCKS})
    partial_objs = [prog.data(f"p[{b}]", 8) for b in range(N_BLOCKS)]
    for b in range(N_BLOCKS):
        prog.task(f"dot({b})", ins=[y_objs[b]], outs=[partial_objs[b]],
                  work=0.01, fn=dot_fn(b) if with_payload else None,
                  meta={"ep_socket": b * 8 // N_BLOCKS})
    alpha_obj = prog.data("alpha", 8)
    prog.task("reduce", ins=partial_objs, outs=[alpha_obj], work=0.005,
              fn=reduce_fn if with_payload else None, meta={"ep_socket": 0})
    return prog.finalize(), ctx


def reference_alpha() -> float:
    """Plain numpy reference of the same pipeline."""
    prog, ctx = build(with_payload=True)
    for task in prog.tasks:  # creation order is always legal
        if task.fn:
            task.fn()
    return ctx["alpha"][0]


def main() -> None:
    topology = bullion_s16()
    program, _ = build(with_payload=False)
    print("derived TDG:", summarize(program.tdg), "\n")

    # Inspect the window mapping the RGP scheduler would use.
    plan = partition_window(program.tdg, program.n_tasks, topology,
                            DualRecursiveBipartitioner(), seed=0)
    counts = np.bincount(plan.assignment, minlength=8)
    print("window partition tasks per socket:", counts)

    expected = reference_alpha()
    for policy in ("las", "rgp+las", "dfifo"):
        program_p, ctx = build(with_payload=True)
        result = simulate(program_p, topology, make_scheduler(policy), seed=3)
        execute_in_order(program_p, result.completion_order())
        status = "OK" if abs(ctx["alpha"][0] - expected) < 1e-9 else "MISMATCH"
        print(f"{policy:8s} makespan={result.makespan:8.3f} "
              f"alpha={ctx['alpha'][0]:.6f} [{status}]")
    print(f"\nreference alpha = {expected:.6f}")


if __name__ == "__main__":
    main()
