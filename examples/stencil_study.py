#!/usr/bin/env python3
"""Domain example: NUMA placement study of a 2-D Jacobi stencil.

Reproduces the Jacobi bar group of Figure 1 at reduced scale and digs one
level deeper than the paper: per-policy remote-traffic matrices and an
ASCII Gantt chart of the RGP+LAS schedule.

Run:  python examples/stencil_study.py
"""

import numpy as np

from repro import bullion_s16, make_app, make_scheduler
from repro.experiments import ExperimentConfig
from repro.metrics import gantt_ascii
from repro.runtime import Simulator


def main() -> None:
    cfg = ExperimentConfig.quick(seeds=(0, 1, 2))
    topology = cfg.topology
    app = make_app("jacobi", nt=8, tile=96, sweeps=6)
    program = app.build(topology.n_sockets)
    print(f"Jacobi: {program.n_tasks} tasks, "
          f"{program.total_traffic_bytes() / 1e6:.0f} MB of traffic\n")

    makespans = {}
    for policy in ("las", "dfifo", "ep", "rgp+las"):
        runs = []
        last = None
        for seed in cfg.seeds:
            sim = Simulator(
                program, topology, make_scheduler(policy),
                interconnect=cfg.interconnect(), steal=cfg.steal, seed=seed,
            )
            last = sim.run()
            runs.append(last.makespan)
        makespans[policy] = float(np.mean(runs))
        # Traffic matrix: rows = executing socket, cols = memory node (MB).
        matrix = last.bytes_by_pair / 1e6
        diag = np.trace(matrix) / matrix.sum()
        print(f"== {policy}: makespan {makespans[policy]:.2f}, "
              f"local traffic {diag:.0%}")
        with np.printoptions(precision=2, suppress=True):
            print(matrix, "\n")

    print("speedups vs LAS (paper Figure 1: DFIFO=0.42, others in band):")
    for policy, mk in makespans.items():
        print(f"  {policy:8s} {makespans['las'] / mk:5.2f}x")

    # Show where the RGP+LAS schedule actually ran.
    sim = Simulator(program, topology, make_scheduler("rgp+las"),
                    interconnect=cfg.interconnect(), steal=cfg.steal, seed=0)
    result = sim.run()
    print("\nRGP+LAS schedule (first 16 cores):")
    print(gantt_ascii(result, width=72, max_cores=16))


if __name__ == "__main__":
    main()
