"""Legacy setup shim.

The CI environment has no network and no ``wheel`` package, so PEP 660
editable installs are unavailable; this file lets ``pip install -e .`` use
the legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
